//! Load generator for `dbselectd`: spawns the daemon in-process on a tiny
//! frozen-catalog fixture, then drives it over **real TCP sockets** with
//! concurrent closed-loop clients, reporting sustained throughput and
//! client-observed latency percentiles as JSON (the source of
//! `BENCH_server.json`).
//!
//! ```text
//! cargo run --release -p bench --bin loadgen [-- SECONDS [CLIENTS] [--idle-conns N] [--topk K]]
//! ```
//!
//! `--topk K` adds `"k":K` to every `/route` body, exercising the pruned
//! top-k serving path in all throughput phases. Independent of the knob, a
//! dedicated sweep phase measures keep-alive `/route` at k ∈ {1, 5, 10,
//! full} and reports throughput and latency per cell in a `topk` block.
//!
//! Besides the throughput phases, an idle-connection soak parks
//! `--idle-conns` established keep-alive connections (default 2000,
//! clamped to the fd rlimit) and re-measures the `/healthz` keep-alive
//! phase with them in place, reporting the daemon's per-idle-connection
//! rss/fd footprint and the p99 impact of a large idle population on the
//! reactor's event loop.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::experiment::{profile_collection, HarnessConfig};
use corpus::TestBedConfig;
use dbselect_core::summary::ContentSummary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sampling::{profile_qbs, PipelineConfig, RefreshScheduler, SamplerKind};
use server::metrics::Histogram;
use server::state::ServingState;
use server::{ProxyConfig, Server, ServerConfig};
use store::catalog::StoredCatalog;
use store::delta::{delta_file_name, ChainWriter};
use store::refresh::RefreshSession;
use store::snapshot::ServingSnapshot;
use store::{CollectionStore, StoredDatabase};

/// Build the tiny testbed fixture, freeze it, and save it to a temp file.
/// Also returns the frozen catalog itself plus one fresh re-probe summary
/// per database (sampled under a different seed, standing in for drifted
/// content) so the refresh-churn phase can append genuine delta rounds.
fn build_fixture() -> (
    std::path::PathBuf,
    Vec<String>,
    StoredCatalog,
    Vec<ContentSummary>,
) {
    let mut bed = TestBedConfig::tiny(30).build();
    let config = HarnessConfig::new(SamplerKind::Qbs, true, 30);
    // Profiling is only exercised to keep the fixture identical to the
    // broker benchmarks' (QBS summaries, shrinkage fit included).
    let _profiled = profile_collection(&mut bed, &config);

    let mut rng = StdRng::seed_from_u64(40);
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let databases = bed
        .databases
        .iter()
        .map(|tdb| {
            let profile = profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng);
            StoredDatabase {
                name: tdb.name.clone(),
                classification: tdb.category,
                summary: profile.summary,
                sample_docs: profile.sample.docs.into_iter().map(|d| d.tokens).collect(),
            }
        })
        .collect();
    let store = CollectionStore {
        dict: bed.dict.clone(),
        hierarchy: bed.hierarchy.clone(),
        databases,
    };
    let frozen = StoredCatalog::freeze(
        store,
        dbselect_core::category_summary::CategoryWeighting::BySize,
    );
    let path = std::env::temp_dir().join(format!("dbselectd-loadgen-{}.snap", std::process::id()));
    ServingSnapshot::from_stored(&frozen)
        .save(&path)
        .expect("save fixture snapshot");

    let mut rng = StdRng::seed_from_u64(41);
    let probes: Vec<ContentSummary> = bed
        .databases
        .iter()
        .map(|tdb| profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng).summary)
        .collect();

    // Query strings: the testbed's evaluation queries, spelled out so they
    // travel as HTTP payloads.
    let queries: Vec<String> = bed
        .queries
        .iter()
        .map(|q| {
            q.terms
                .iter()
                .map(|&t| bed.dict.term(t))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    (path, queries, frozen, probes)
}

/// One closed-loop HTTP exchange on a fresh `Connection: close`
/// connection; returns (status, body).
fn exchange(addr: SocketAddr, raw: &[u8]) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw)?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes)?;
    let text = String::from_utf8_lossy(&bytes);
    let (head, body) = text.split_once("\r\n\r\n").unwrap_or((&text, ""));
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, body.to_string()))
}

/// A close-mode request: the daemon hangs up after answering, so the
/// client can frame the response by EOF.
fn post_bytes(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A keep-alive request (HTTP/1.1 default): responses must be framed by
/// `Content-Length` instead of EOF.
fn post_bytes_keep_alive(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A bodyless GET in either connection mode.
fn get_bytes(path: &str, keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive {
        ""
    } else {
        "Connection: close\r\n"
    };
    format!("GET {path} HTTP/1.1\r\nHost: loadgen\r\n{connection}\r\n").into_bytes()
}

/// Read one `Content-Length`-framed response off a persistent connection;
/// returns (status, server_will_close).
fn read_framed_response<R: std::io::Read>(
    reader: &mut BufReader<R>,
) -> std::io::Result<(u16, bool)> {
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut status = 0u16;
    let mut length = 0usize;
    let mut closing = false;
    let mut first = true;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if first {
            status = line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("missing status"))?;
            first = false;
        } else if let Some(v) = line.strip_prefix("Content-Length: ") {
            length = v.parse().map_err(|_| bad("bad Content-Length"))?;
        } else if line == "Connection: close" {
            closing = true;
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok((status, closing))
}

/// This process's resident set in kB (`VmRSS`), daemon included — the
/// daemon runs in-process, so deltas capture both ends of each socket.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Open file descriptors in this process.
fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count() as u64)
}

/// The soft `RLIMIT_NOFILE` bound, for clamping the soak size.
fn fd_soft_limit() -> u64 {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1024)
}

struct PhaseResult {
    requests: u64,
    errors: u64,
    seconds: f64,
    histogram: Histogram,
}

impl PhaseResult {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.seconds.max(f64::MIN_POSITIVE)
    }
}

/// Drive `addr` with `clients` closed-loop threads for `duration`, each
/// request drawn round-robin from `bodies`.
fn run_phase(
    addr: SocketAddr,
    bodies: &[Vec<u8>],
    clients: usize,
    duration: Duration,
) -> PhaseResult {
    let histogram = Arc::new(Histogram::latency());
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let histogram = Arc::clone(&histogram);
            let stop = Arc::clone(&stop);
            let errors = Arc::clone(&errors);
            let bodies = bodies.to_vec();
            std::thread::spawn(move || {
                let mut sent = 0u64;
                let mut i = c; // stagger the rotation per client
                while !stop.load(Ordering::Relaxed) {
                    let begun = Instant::now();
                    match exchange(addr, &bodies[i % bodies.len()]) {
                        Ok((200, _)) => histogram.observe(begun.elapsed().as_nanos() as u64),
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    sent += 1;
                    i += 1;
                }
                sent
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let requests: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let seconds = started.elapsed().as_secs_f64();
    PhaseResult {
        requests,
        errors: errors.load(Ordering::Relaxed),
        seconds,
        histogram: Arc::try_unwrap(histogram).unwrap_or_else(|_| unreachable!()),
    }
}

/// Like [`run_phase`], but every client holds one persistent connection,
/// framing responses by `Content-Length` and reconnecting only when the
/// daemon closes (request cap, errors). Same closed loop, same bodies —
/// the rps delta against [`run_phase`] is the cost of per-request
/// connect/teardown.
fn run_keep_alive_phase(
    addr: SocketAddr,
    bodies: &[Vec<u8>],
    clients: usize,
    duration: Duration,
) -> PhaseResult {
    let histogram = Arc::new(Histogram::latency());
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let histogram = Arc::clone(&histogram);
            let stop = Arc::clone(&stop);
            let errors = Arc::clone(&errors);
            let bodies = bodies.to_vec();
            std::thread::spawn(move || {
                let mut sent = 0u64;
                let mut i = c; // stagger the rotation per client
                let mut connection: Option<(TcpStream, BufReader<TcpStream>)> = None;
                while !stop.load(Ordering::Relaxed) {
                    let begun = Instant::now();
                    let result = (|| -> std::io::Result<(u16, bool)> {
                        if connection.is_none() {
                            let stream = TcpStream::connect(addr)?;
                            stream.set_nodelay(true)?;
                            let reader = BufReader::new(stream.try_clone()?);
                            connection = Some((stream, reader));
                        }
                        let (stream, reader) = connection.as_mut().expect("just connected");
                        stream.write_all(&bodies[i % bodies.len()])?;
                        read_framed_response(reader)
                    })();
                    match result {
                        Ok((200, closing)) => {
                            histogram.observe(begun.elapsed().as_nanos() as u64);
                            if closing {
                                connection = None; // daemon hit its request cap
                            }
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            connection = None;
                        }
                    }
                    sent += 1;
                    i += 1;
                }
                sent
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let requests: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let seconds = started.elapsed().as_secs_f64();
    PhaseResult {
        requests,
        errors: errors.load(Ordering::Relaxed),
        seconds,
        histogram: Arc::try_unwrap(histogram).unwrap_or_else(|_| unreachable!()),
    }
}

/// Boot a fresh daemon serving `path` as every tenant in `tenants`, with
/// the scoring phase scattered over `shards` catalog shards (1 =
/// monolithic). Used by the tenant/shard matrix phases, which need
/// bind-time configuration the main daemon was not started with.
fn boot_matrix_daemon(
    path: &std::path::Path,
    tenants: &[&str],
    shards: usize,
    workers: usize,
) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 256,
        deadline: Duration::from_secs(10),
        idle_timeout: Duration::from_secs(300),
        shards,
        ..Default::default()
    };
    let states = tenants
        .iter()
        .map(|name| {
            let state =
                ServingState::load_sharded(path.to_str().unwrap(), config.cache_capacity, shards)
                    .expect("load fixture for matrix daemon");
            (name.to_string(), state)
        })
        .collect();
    let daemon = Server::bind_tenants(config, states).expect("bind matrix daemon");
    let addr = daemon.local_addr();
    let handle = std::thread::spawn(move || daemon.run().expect("matrix daemon run"));
    (addr, handle)
}

fn phase_json(name: &str, clients: usize, result: &PhaseResult) -> String {
    format!(
        r#"    "{name}": {{
      "clients": {clients},
      "requests": {},
      "errors": {},
      "seconds": {:.2},
      "sustained_rps": {:.1},
      "latency_ns": {{ "p50": {}, "p95": {}, "p99": {} }},
      "latency_human": {{ "p50": "{}", "p95": "{}", "p99": "{}" }}
    }}"#,
        result.requests,
        result.errors,
        result.seconds,
        result.rps(),
        result.histogram.percentile(0.50),
        result.histogram.percentile(0.95),
        result.histogram.percentile(0.99),
        server::metrics::format_nanos(result.histogram.percentile(0.50)),
        server::metrics::format_nanos(result.histogram.percentile(0.95)),
        server::metrics::format_nanos(result.histogram.percentile(0.99)),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut secs = 3.0f64;
    let mut clients = 8usize;
    let mut idle_conns = 2000usize;
    let mut topk: Option<usize> = None;
    let mut positional = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--idle-conns" {
            idle_conns = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--idle-conns expects an integer");
        } else if arg == "--topk" {
            topk = Some(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .expect("--topk expects a positive integer"),
            );
        } else if positional == 0 {
            secs = arg.parse().unwrap_or(secs);
            positional = 1;
        } else {
            clients = arg.parse().unwrap_or(clients);
            positional = 2;
        }
    }
    let duration = Duration::from_secs_f64(secs);

    eprintln!("building tiny(30) fixture catalog …");
    let (path, queries, frozen, probes) = build_fixture();

    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 256,
        deadline: Duration::from_secs(10),
        // Parked soak connections must out-live the measurement phases,
        // not get reaped mid-soak.
        idle_timeout: Duration::from_secs(300),
        ..Default::default()
    };
    let state = ServingState::load(path.to_str().unwrap(), config.cache_capacity)
        .expect("load fixture catalog");
    let daemon = Server::bind(config, state).expect("bind");
    let addr = daemon.local_addr();
    let accept_loop = std::thread::spawn(move || daemon.run().expect("daemon run"));
    eprintln!(
        "dbselectd on {addr}: {} workers, {} clients, {:?}/phase",
        workers, clients, duration
    );

    // Sanity: the fixture's queries must resolve against the catalog.
    let probe = post_bytes(
        "/route",
        &format!(r#"{{"query":"{}","seed":42}}"#, queries[0]),
    );
    let (status, body) = exchange(addr, &probe).expect("probe");
    assert_eq!(status, 200, "probe failed: {body}");
    assert!(
        body.contains(r#""unknown":[]"#),
        "fixture queries must be fully known to the catalog: {body}"
    );

    // `--topk K` routes every measured /route body through the pruned
    // top-k path; without it the daemon serves the full ranking.
    let route_body = |q: &str, k: Option<usize>| match k {
        Some(k) => format!(r#"{{"query":"{q}","seed":42,"k":{k}}}"#),
        None => format!(r#"{{"query":"{q}","seed":42}}"#),
    };

    // Phase 1: single-query /route, all clients.
    let route_bodies: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| post_bytes("/route", &route_body(q, topk)))
        .collect();
    let route = run_phase(addr, &route_bodies, clients, duration);
    eprintln!(
        "/route       {:>8.1} rps, p50 {}",
        route.rps(),
        server::metrics::format_nanos(route.histogram.percentile(0.50))
    );

    // Phase 1b: the same /route traffic over persistent connections.
    let keep_alive_bodies: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| post_bytes_keep_alive("/route", &route_body(q, topk)))
        .collect();
    let keep_alive = run_keep_alive_phase(addr, &keep_alive_bodies, clients, duration);
    let speedup = keep_alive.rps() / route.rps().max(f64::MIN_POSITIVE);
    eprintln!(
        "/route (keep-alive) {:>8.1} rps, p50 {} ({speedup:.2}x over close-per-request)",
        keep_alive.rps(),
        server::metrics::format_nanos(keep_alive.histogram.percentile(0.50))
    );

    // Phase 1e: top-k pruning sweep. The same keep-alive /route traffic
    // truncated at k ∈ {1, 5, 10} versus the full ranking — each cell is
    // throughput and tail latency of the pruned serving path at that k.
    // On the tiny fixture (12 dbs) the kernel win is modest and mostly
    // shows up as smaller response bodies; the catalog-scale kernel win
    // is priced by `broker_bench`'s route_topk group (BENCH_broker.json).
    let mut topk_cells: Vec<(Option<usize>, PhaseResult)> = Vec::new();
    for cell in [Some(1usize), Some(5), Some(10), None] {
        let bodies: Vec<Vec<u8>> = queries
            .iter()
            .map(|q| post_bytes_keep_alive("/route", &route_body(q, cell)))
            .collect();
        let result = run_keep_alive_phase(addr, &bodies, clients, duration);
        let label = cell.map_or("full".to_string(), |k| k.to_string());
        assert_eq!(result.errors, 0, "topk sweep cell k={label} errored");
        eprintln!(
            "/route k={label:<4} {:>8.1} rps, p99 {}",
            result.rps(),
            server::metrics::format_nanos(result.histogram.percentile(0.99))
        );
        topk_cells.push((cell, result));
    }

    // Phase 1c: isolate the connection-lifecycle cost itself. /route is
    // scoring-bound (one core saturates on posterior math long before TCP
    // setup matters), so the reconnect-elimination win there shows up as
    // latency, not throughput. /healthz costs the handler ~nothing, which
    // makes per-request connect/teardown the dominant term — the rps
    // ratio of these two phases is the win keep-alive buys per connection.
    let healthz = run_phase(addr, &[get_bytes("/healthz", false)], clients, duration);
    let healthz_keep_alive =
        run_keep_alive_phase(addr, &[get_bytes("/healthz", true)], clients, duration);
    let conn_speedup = healthz_keep_alive.rps() / healthz.rps().max(f64::MIN_POSITIVE);
    eprintln!(
        "/healthz     {:>8.1} rps close, {:>8.1} rps keep-alive ({conn_speedup:.2}x)",
        healthz.rps(),
        healthz_keep_alive.rps(),
    );

    // Phase 1d: idle-connection soak. Park a large population of
    // established keep-alive connections (each serves one real request
    // first, so the daemon tracks it as a genuine idle conn), then
    // re-run the /healthz keep-alive phase with the population in place.
    // rss/fd deltas price one idle connection; the p99 delta against the
    // unsoaked phase is what a big idle population costs the reactor.
    let soak_target = {
        // Two fds per parked conn (client end + in-process daemon end),
        // plus headroom for the daemon, the phases, and stdio.
        let budget = fd_soft_limit().saturating_sub(512) / 2;
        idle_conns.min(budget as usize)
    };
    let rss_kb_before = rss_kb();
    let fds_before = open_fds();
    let warmup = get_bytes("/healthz", true);
    let mut parked = Vec::with_capacity(soak_target);
    for _ in 0..soak_target {
        let conn = (|| -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
            let mut stream = TcpStream::connect(addr)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            stream.write_all(&warmup)?;
            read_framed_response(&mut reader)?;
            Ok((stream, reader))
        })();
        match conn {
            Ok(c) => parked.push(c),
            Err(_) => break, // fd budget exhausted — soak with what we got
        }
    }
    let rss_kb_soaked = rss_kb();
    let fds_soaked = open_fds();
    let healthz_soaked =
        run_keep_alive_phase(addr, &[get_bytes("/healthz", true)], clients, duration);
    let soak_p99_ratio = healthz_soaked.histogram.percentile(0.99) as f64
        / (healthz_keep_alive.histogram.percentile(0.99) as f64).max(f64::MIN_POSITIVE);
    eprintln!(
        "idle soak    {} conns parked: rss {rss_kb_before} → {rss_kb_soaked} kB, fds {fds_before} → {fds_soaked}, /healthz p99 x{soak_p99_ratio:.2}",
        parked.len(),
    );
    let parked_count = parked.len();
    drop(parked);

    // Phase 2: /route_batch with the whole query set per request.
    let all: Vec<String> = queries.iter().map(|q| format!("\"{q}\"")).collect();
    let batch_body = post_bytes(
        "/route_batch",
        &format!(
            r#"{{"queries":[{}],"seed":42,"threads":{}}}"#,
            all.join(","),
            workers.min(8)
        ),
    );
    let batch = run_phase(addr, &[batch_body], clients.min(4), duration);
    eprintln!(
        "/route_batch {:>8.1} rps ({} queries each), p50 {}",
        batch.rps(),
        queries.len(),
        server::metrics::format_nanos(batch.histogram.percentile(0.50))
    );

    // Phase 3: sustained /route while a side thread hot-reloads the v2
    // snapshot in a loop. Every in-flight request must still succeed (the
    // swap is an Arc exchange; loads happen off to the side), and the
    // reload latency IS the zero-rebuild load path under measurement.
    let reload_body = post_bytes(
        "/admin/reload",
        &format!(r#"{{"path":"{}"}}"#, path.display()),
    );
    let reload_hist = Arc::new(Histogram::latency());
    let reload_stop = Arc::new(AtomicBool::new(false));
    let reload_errors = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let reloader = {
        let reload_hist = Arc::clone(&reload_hist);
        let reload_stop = Arc::clone(&reload_stop);
        let reload_errors = Arc::clone(&reload_errors);
        std::thread::spawn(move || {
            let mut reloads = 0u64;
            while !reload_stop.load(Ordering::Relaxed) {
                let begun = Instant::now();
                match exchange(addr, &reload_body) {
                    Ok((200, _)) => {
                        reload_hist.observe(begun.elapsed().as_nanos() as u64);
                        reloads += 1;
                    }
                    _ => {
                        reload_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            reloads
        })
    };
    let under_reload = run_phase(addr, &route_bodies, clients, duration);
    reload_stop.store(true, Ordering::Relaxed);
    let reloads = reloader.join().expect("reloader thread");
    assert_eq!(
        under_reload.errors, 0,
        "in-flight /route requests failed during hot reload"
    );
    assert_eq!(
        reload_errors.load(Ordering::Relaxed),
        0,
        "hot reloads failed under load"
    );
    eprintln!(
        "/route under reload {:>8.1} rps, {} reloads (reload p50 {})",
        under_reload.rps(),
        reloads,
        server::metrics::format_nanos(reload_hist.percentile(0.50))
    );

    // Server-side view, then clean shutdown.
    let (status, metrics_body) = exchange(
        addr,
        b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n",
    )
    .expect("metrics");
    assert_eq!(status, 200);
    let cache_line = metrics_body
        .lines()
        .find(|l| l.starts_with("dbselectd_posterior_cache_hit_rate"))
        .unwrap_or("dbselectd_posterior_cache_hit_rate ?")
        .to_string();
    let (status, _) = exchange(addr, &post_bytes("/admin/shutdown", "")).expect("shutdown");
    assert_eq!(status, 200);
    accept_loop.join().expect("accept loop");

    // Phase 4: shard matrix. The same catalog served monolithically and
    // scattered over 2 and 4 shards, driven by a single keep-alive client
    // so the measurement is the scatter's intra-query parallelism, not
    // client concurrency (under saturation every core is busy either
    // way). Rankings are bit-identical across rows; only latency moves.
    // On this tiny fixture (30 dbs, ~µs of scoring per query) the
    // scatter's thread coordination usually costs more than it saves —
    // the row exists to price that overhead and to track the trend.
    let mut shard_rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let (maddr, mhandle) = boot_matrix_daemon(&path, &["default"], shards, workers);
        let result = run_keep_alive_phase(maddr, &keep_alive_bodies, 1, duration);
        assert_eq!(result.errors, 0, "shard={shards} matrix phase errored");
        let (status, _) = exchange(maddr, &post_bytes("/admin/shutdown", "")).expect("shutdown");
        assert_eq!(status, 200);
        mhandle.join().expect("matrix daemon");
        eprintln!(
            "/route shards={shards} {:>8.1} rps, p50 {}",
            result.rps(),
            server::metrics::format_nanos(result.histogram.percentile(0.50))
        );
        shard_rows.push((shards, result));
    }
    let shard_p50_base = shard_rows[0].1.histogram.percentile(0.50) as f64;
    let shard_speedup = shard_p50_base
        / (shard_rows.last().unwrap().1.histogram.percentile(0.50) as f64).max(f64::MIN_POSITIVE);

    // Phase 5: tenant matrix. Four tenants of the same catalog behind
    // /t/<name>/route, clients rotating across tenants — the rps delta
    // against the single-tenant keep-alive phase is the whole cost of
    // tenant dispatch (name lookup, quota gate, per-tenant metrics).
    let tenant_names = ["t0", "t1", "t2", "t3"];
    let (taddr, thandle) = boot_matrix_daemon(&path, &tenant_names, 1, workers);
    let tenant_bodies: Vec<Vec<u8>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            post_bytes_keep_alive(
                &format!("/t/{}/route", tenant_names[i % tenant_names.len()]),
                &format!(r#"{{"query":"{q}","seed":42}}"#),
            )
        })
        .collect();
    let tenant_phase = run_keep_alive_phase(taddr, &tenant_bodies, clients, duration);
    assert_eq!(tenant_phase.errors, 0, "tenant matrix phase errored");
    // Label isolation on the wire: every tenant shows up in /metrics
    // under its own label.
    let (status, tenant_metrics) = exchange(taddr, &get_bytes("/metrics", false)).expect("metrics");
    assert_eq!(status, 200);
    for name in tenant_names {
        assert!(
            tenant_metrics.contains(&format!("tenant=\"{name}\"")),
            "tenant {name} missing from /metrics"
        );
    }
    let (status, _) = exchange(taddr, &post_bytes("/admin/shutdown", "")).expect("shutdown");
    assert_eq!(status, 200);
    thandle.join().expect("tenant matrix daemon");
    let tenant_overhead = keep_alive.rps() / tenant_phase.rps().max(f64::MIN_POSITIVE);
    eprintln!(
        "/t/<name>/route (4 tenants) {:>8.1} rps ({tenant_overhead:.2}x single-tenant rps)",
        tenant_phase.rps(),
    );

    // Phase 6: federated proxy. Two full-snapshot backends started with
    // --shards 2 behind a scatter-gather proxy: the healthy row prices
    // the federation hop (one extra network round-trip plus merge), the
    // fault row kills one backend a third of the way in and restarts it
    // at two thirds — every client request must still answer 200
    // (degraded merges over the surviving shard, never a 5xx), and the
    // dead backend's breaker must open and close again around the
    // restart.
    let (b0_addr, b0_handle) = boot_matrix_daemon(&path, &["default"], 2, workers);
    let (b1_addr, b1_handle) = boot_matrix_daemon(&path, &["default"], 2, workers);
    let proxy_daemon = Server::bind_proxy(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 256,
        deadline: Duration::from_secs(10),
        idle_timeout: Duration::from_secs(300),
        proxy: Some(ProxyConfig {
            backends: vec![b0_addr.to_string(), b1_addr.to_string()],
            health_interval: Duration::from_millis(100),
            breaker_failures: 2,
            breaker_cooldown: Duration::from_millis(500),
            ..Default::default()
        }),
        ..Default::default()
    })
    .expect("bind proxy");
    let proxy_addr = proxy_daemon.local_addr();
    let proxy_loop = std::thread::spawn(move || proxy_daemon.run().expect("proxy run"));

    // Bit-identity probe: the proxy's merged answer must equal a
    // backend's own monolithic answer, byte for byte.
    let probe_body = post_bytes(
        "/route",
        &format!(r#"{{"query":"{}","seed":42}}"#, queries[0]),
    );
    let (ps, proxy_probe) = exchange(proxy_addr, &probe_body).expect("proxy probe");
    let (bs, backend_probe) = exchange(b0_addr, &probe_body).expect("backend probe");
    assert_eq!((ps, bs), (200, 200), "{proxy_probe}");
    assert_eq!(
        proxy_probe, backend_probe,
        "proxy diverged from its backends"
    );

    let proxy_phase = run_keep_alive_phase(proxy_addr, &keep_alive_bodies, clients, duration);
    assert_eq!(proxy_phase.errors, 0, "healthy proxy phase errored");
    let proxy_overhead = keep_alive.rps() / proxy_phase.rps().max(f64::MIN_POSITIVE);
    eprintln!(
        "/route via proxy {:>8.1} rps ({proxy_overhead:.2}x direct rps), p50 {}",
        proxy_phase.rps(),
        server::metrics::format_nanos(proxy_phase.histogram.percentile(0.50))
    );

    let chaos = {
        let path = path.clone();
        let b1_addr_str = b1_addr.to_string();
        std::thread::spawn(move || {
            std::thread::sleep(duration.mul_f64(0.34));
            let (status, _) =
                exchange(b1_addr, &post_bytes("/admin/shutdown", "")).expect("kill backend 1");
            assert_eq!(status, 200);
            b1_handle.join().expect("backend 1 exits");
            std::thread::sleep(duration.mul_f64(0.33));
            // Restart on the same address the proxy was configured with.
            let config = ServerConfig {
                addr: b1_addr_str,
                workers,
                queue_capacity: 256,
                idle_timeout: Duration::from_secs(300),
                shards: 2,
                ..Default::default()
            };
            let state =
                ServingState::load_sharded(path.to_str().unwrap(), config.cache_capacity, 2)
                    .expect("reload backend 1 fixture");
            let daemon = Server::bind(config, state).expect("rebind backend 1");
            std::thread::spawn(move || daemon.run().expect("backend 1 run"))
        })
    };
    let under_fault = run_phase(proxy_addr, &route_bodies, clients, duration);
    let b1_handle = chaos.join().expect("chaos thread");
    assert_eq!(
        under_fault.errors, 0,
        "a client saw an error while a backend was down"
    );
    eprintln!(
        "/route via proxy, one backend killed+restarted mid-run: {:>8.1} rps, 0 client errors",
        under_fault.rps()
    );

    // The restarted backend must be readmitted: breaker open -> half-open
    // -> closed, visible in the proxy's metrics.
    let breaker_closed = format!("dbselectd_backend_breaker_state{{backend=\"{b1_addr}\"}} 0");
    let recovery_started = Instant::now();
    let mut proxy_metrics = String::new();
    while recovery_started.elapsed() < Duration::from_secs(10) {
        let (_, m) = exchange(proxy_addr, &get_bytes("/metrics", false)).expect("proxy metrics");
        proxy_metrics = m;
        if proxy_metrics.contains(&breaker_closed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        proxy_metrics.contains(&breaker_closed),
        "breaker never closed after the backend restart:\n{proxy_metrics}"
    );
    let proxy_metric = |name: &str| -> u64 {
        proxy_metrics
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let degraded_total = proxy_metric("dbselectd_proxy_degraded_total");
    let breaker_opens = proxy_metric(&format!(
        "dbselectd_backend_breaker_opens_total{{backend=\"{b1_addr}\"}}"
    ));
    assert!(
        degraded_total >= 1,
        "no degraded responses despite the kill"
    );
    assert!(
        breaker_opens >= 1,
        "the dead backend's breaker never opened"
    );
    let (ps, proxy_probe) = exchange(proxy_addr, &probe_body).expect("recovered probe");
    assert_eq!(ps, 200);
    assert_eq!(
        proxy_probe, backend_probe,
        "recovered proxy must serve bit-identically again"
    );
    eprintln!(
        "proxy recovery: breaker opened {breaker_opens}x, {degraded_total} degraded merges, bit-identical again"
    );

    for (baddr, bhandle) in [(proxy_addr, proxy_loop), (b0_addr, b0_handle)] {
        let (status, _) = exchange(baddr, &post_bytes("/admin/shutdown", "")).expect("shutdown");
        assert_eq!(status, 200);
        bhandle.join().expect("daemon exits");
    }
    let (status, _) = exchange(b1_addr, &post_bytes("/admin/shutdown", "")).expect("shutdown b1");
    assert_eq!(status, 200);
    b1_handle.join().expect("restarted backend exits");

    // Phase 7: refresh churn. A daemon serves a delta chain directory
    // with the background refresher polling at 50ms, while a churn thread
    // plays the refresh pipeline against the chain: scheduler picks two
    // stale databases per round, applies their re-probe summaries through
    // the pinned-epoch session, and appends one delta file every ~100ms.
    // Keep-alive /route clients hammer throughout — every in-flight
    // request must succeed across every generation swap, the daemon must
    // converge on the final tip generation, and the load-failure counter
    // must stay zero.
    let chain_dir =
        std::env::temp_dir().join(format!("dbselectd-loadgen-chain-{}", std::process::id()));
    std::fs::remove_dir_all(&chain_dir).ok();
    std::fs::create_dir_all(&chain_dir).expect("create chain dir");
    let session = RefreshSession::new(frozen);
    let n_dbs = session.len();
    let base = session.freeze_full();
    let writer = ChainWriter::create(&chain_dir, &base).expect("write chain base");
    let refresh_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: 256,
        deadline: Duration::from_secs(10),
        idle_timeout: Duration::from_secs(300),
        refresh_interval: Some(Duration::from_millis(50)),
        ..Default::default()
    };
    let refresh_state = ServingState::load(
        chain_dir.to_str().unwrap(),
        refresh_config.cache_capacity,
    )
    .expect("load chain base");
    let refresh_daemon = Server::bind(refresh_config, refresh_state).expect("bind refresh daemon");
    let refresh_addr = refresh_daemon.local_addr();
    let refresh_loop = std::thread::spawn(move || refresh_daemon.run().expect("refresh daemon run"));

    let churn_stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let churn_stop = Arc::clone(&churn_stop);
        let chain_dir = chain_dir.clone();
        std::thread::spawn(move || {
            let mut session = session;
            let mut writer = writer;
            let append_hist = Histogram::latency();
            let mut delta_bytes = 0u64;
            let mut scheduler = RefreshScheduler::new(n_dbs, 2, 42);
            for db in 0..n_dbs {
                scheduler.set_coverage(db, session.coverage(db));
            }
            while !churn_stop.load(Ordering::Relaxed) {
                let picks = scheduler.next_round();
                let patches: Vec<_> = picks
                    .iter()
                    .map(|&db| session.apply_probe(db, probes[db].clone()))
                    .collect();
                for &db in &picks {
                    scheduler.set_coverage(db, session.coverage(db));
                }
                let begun = Instant::now();
                let generation = writer
                    .append_round(session.dict(), patches)
                    .expect("append refresh round");
                append_hist.observe(begun.elapsed().as_nanos() as u64);
                delta_bytes += std::fs::metadata(chain_dir.join(delta_file_name(generation)))
                    .map_or(0, |m| m.len());
                std::thread::sleep(Duration::from_millis(100));
            }
            (writer.generation(), delta_bytes, append_hist)
        })
    };
    let under_refresh = run_keep_alive_phase(refresh_addr, &keep_alive_bodies, clients, duration);
    churn_stop.store(true, Ordering::Relaxed);
    let (final_generation, refresh_delta_bytes, append_hist) =
        churn.join().expect("churn thread");
    assert_eq!(
        under_refresh.errors, 0,
        "in-flight /route requests failed during refresh churn"
    );
    assert!(final_generation >= 1, "churn never appended a round");
    // The refresher polls every 50ms; the daemon must converge on the
    // final chain tip shortly after the last append.
    let tip_marker = format!(r#""catalog_generation":{final_generation}"#);
    let convergence_started = Instant::now();
    let mut readyz = String::new();
    while convergence_started.elapsed() < Duration::from_secs(10) {
        let (_, body) = exchange(refresh_addr, &get_bytes("/readyz", false)).expect("readyz");
        readyz = body;
        if readyz.contains(&tip_marker) {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        readyz.contains(&tip_marker),
        "daemon never converged on chain generation {final_generation}: {readyz}"
    );
    let (status, refresh_metrics) =
        exchange(refresh_addr, &get_bytes("/metrics", false)).expect("refresh metrics");
    assert_eq!(status, 200);
    assert!(
        refresh_metrics.contains("dbselectd_catalog_load_failures_total 0"),
        "chain loads failed during refresh churn:\n{refresh_metrics}"
    );
    let (status, _) =
        exchange(refresh_addr, &post_bytes("/admin/shutdown", "")).expect("shutdown refresh");
    assert_eq!(status, 200);
    refresh_loop.join().expect("refresh daemon exits");
    eprintln!(
        "/route under refresh churn {:>8.1} rps, {} rounds appended ({} delta bytes), converged at generation {}",
        under_refresh.rps(),
        final_generation,
        refresh_delta_bytes,
        final_generation,
    );
    std::fs::remove_dir_all(&chain_dir).ok();

    std::fs::remove_file(&path).ok();

    let topk_rows = topk_cells
        .iter()
        .map(|(cell, r)| {
            let label = cell.map_or(r#""full""#.to_string(), |k| k.to_string());
            format!(
                r#"      {{ "k": {label}, "clients": {clients}, "requests": {}, "sustained_rps": {:.1}, "p50_ns": {}, "p99_ns": {}, "p50": "{}", "p99": "{}" }}"#,
                r.requests,
                r.rps(),
                r.histogram.percentile(0.50),
                r.histogram.percentile(0.99),
                server::metrics::format_nanos(r.histogram.percentile(0.50)),
                server::metrics::format_nanos(r.histogram.percentile(0.99)),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    println!(
        r#"{{
  "bench": "crates/bench/src/bin/loadgen.rs",
  "command": "cargo run --release -p bench --bin loadgen -- {secs} {clients} --idle-conns {idle_conns}",
  "fixture": "TestBedConfig::tiny(30), QBS profiling, v2 serving snapshot served by dbselectd over loopback TCP",
  "server": {{ "workers": {workers}, "queue_capacity": 256 }},
  "queries": {nq},
  "phases": {{
{route_json},
{keep_alive_json},
{healthz_json},
{healthz_keep_alive_json},
{healthz_soaked_json},
{batch_json},
{under_reload_json},
{shards_1_json},
{shards_2_json},
{shards_4_json},
{tenant_matrix_json},
{proxy_json},
{proxy_fault_json},
{under_refresh_json}
  }},
  "shard_matrix": {{
    "rows": [1, 2, 4],
    "single_client_p50_speedup_4_shards_vs_1": {shard_speedup:.2},
    "note": "one keep-alive client against the same catalog at 1/2/4 shards; rankings bit-identical, only the scoring scatter differs. tiny(30) scores in ~µs, so scatter thread coordination dominates — the row prices that overhead"
  }},
  "tenant_matrix": {{
    "tenants": 4,
    "rps_ratio_single_tenant_vs_4_tenants": {tenant_overhead:.2},
    "note": "clients rotate /t/t0..t3/route over the same catalog; ratio vs route_keep_alive is the cost of tenant dispatch (lookup, quota gate, per-tenant metrics)"
  }},
  "federation": {{
    "backends": 2,
    "rps_ratio_direct_vs_proxied": {proxy_overhead:.2},
    "client_errors_during_backend_kill": {fault_errors},
    "degraded_responses": {degraded_total},
    "breaker_opens": {breaker_opens},
    "note": "scatter-gather proxy over two --shards 2 backends; healthy responses byte-identical to a single daemon. fault row: one backend shut down at t+34% and restarted at t+67% of the phase — clients saw zero errors (degraded 200s instead), and the breaker walked open -> half-open -> closed around the restart"
  }},
  "idle_soak": {{
    "requested_conns": {idle_conns},
    "parked_conns": {parked_count},
    "fd_soft_limit": {fd_limit},
    "rss_kb_before": {rss_kb_before},
    "rss_kb_soaked": {rss_kb_soaked},
    "rss_kb_per_idle_conn": {rss_per_conn:.2},
    "open_fds_before": {fds_before},
    "open_fds_soaked": {fds_soaked},
    "healthz_keep_alive_p99_ratio_vs_unsoaked": {soak_p99_ratio:.2},
    "note": "parked conns are established keep-alive connections (one /healthz served each); rss/fds are process-wide and include the in-process daemon AND the loadgen's client ends (3 fds per conn: daemon socket, client socket, client reader dup)"
  }},
  "topk": {{
    "knob": {knob},
    "cells": [
{topk_rows}
    ],
    "note": "keep-alive /route sweep over the pruned top-k serving path; `k` caps the served ranking inside the engine (maxscore kernels), `full` is the untruncated baseline. With 12 fixture databases the cells mostly price response-body size; the catalog-scale kernel win (2.1x at k=10 over 500 dbs) is recorded in BENCH_broker.json's route_topk group"
  }},
  "route_keep_alive_speedup_vs_close": {speedup:.2},
  "healthz_keep_alive_speedup_vs_close": {conn_speedup:.2},
  "reload": {{
    "count": {reloads},
    "errors": 0,
    "interval_ms": 100,
    "latency_ns": {{ "p50": {rl_p50}, "p99": {rl_p99} }},
    "latency_human": {{ "p50": "{rl_p50_h}", "p99": "{rl_p99_h}" }},
    "note": "v2 snapshot hot-swapped while /route clients hammer; zero failed in-flight requests"
  }},
  "refresh": {{
    "rounds": {final_generation},
    "budget_per_round": 2,
    "databases": {n_dbs},
    "round_interval_ms": 100,
    "refresher_poll_ms": 50,
    "final_catalog_generation": {final_generation},
    "delta_bytes_total": {refresh_delta_bytes},
    "delta_bytes_per_round": {delta_per_round:.0},
    "append_latency_ns": {{ "p50": {ap_p50}, "p99": {ap_p99} }},
    "append_latency_human": {{ "p50": "{ap_p50_h}", "p99": "{ap_p99_h}" }},
    "catalog_load_failures_total": 0,
    "note": "a churn thread plays the live-refresh pipeline (scheduler picks 2 stale dbs/round, pinned-epoch apply_probe, one delta file appended per round) against a chain directory the daemon serves with --refresh-interval-ms 50, while keep-alive /route clients hammer. Zero failed in-flight requests across every generation swap, zero chain-load failures, and the daemon converged on the final tip generation; delta bytes per round price re-freezing only the touched rows (full snapshot is ~3.3MB)"
  }},
  "server_cache": "{cache_line}",
  "note": "closed-loop clients; `route` opens one connection per request (Connection: close), `*_keep_alive` holds a persistent HTTP/1.1 connection per client; /route is scoring-bound so its keep-alive win is latency (p50), while the /healthz pair isolates per-request connect/teardown as throughput; latency is client-observed wall time"
}}"#,
        secs = duration.as_secs_f64(),
        knob = topk.map_or_else(|| "null".to_string(), |k| k.to_string()),
        clients = clients,
        workers = workers,
        nq = queries.len(),
        route_json = phase_json("route", clients, &route),
        keep_alive_json = phase_json("route_keep_alive", clients, &keep_alive),
        healthz_json = phase_json("healthz", clients, &healthz),
        healthz_keep_alive_json = phase_json("healthz_keep_alive", clients, &healthz_keep_alive),
        healthz_soaked_json = phase_json(
            "healthz_keep_alive_under_idle_soak",
            clients,
            &healthz_soaked
        ),
        idle_conns = idle_conns,
        parked_count = parked_count,
        fd_limit = fd_soft_limit(),
        rss_kb_before = rss_kb_before,
        rss_kb_soaked = rss_kb_soaked,
        rss_per_conn =
            (rss_kb_soaked.saturating_sub(rss_kb_before)) as f64 / (parked_count as f64).max(1.0),
        fds_before = fds_before,
        fds_soaked = fds_soaked,
        soak_p99_ratio = soak_p99_ratio,
        speedup = speedup,
        conn_speedup = conn_speedup,
        batch_json = phase_json("route_batch", clients.min(4), &batch),
        under_reload_json = phase_json("route_under_reload", clients, &under_reload),
        shards_1_json = phase_json("route_keep_alive_shards_1", 1, &shard_rows[0].1),
        shards_2_json = phase_json("route_keep_alive_shards_2", 1, &shard_rows[1].1),
        shards_4_json = phase_json("route_keep_alive_shards_4", 1, &shard_rows[2].1),
        tenant_matrix_json = phase_json("route_tenant_matrix", clients, &tenant_phase),
        proxy_json = phase_json("route_proxy_keep_alive", clients, &proxy_phase),
        proxy_fault_json = phase_json("route_proxy_under_backend_kill", clients, &under_fault),
        under_refresh_json = phase_json("route_under_refresh_churn", clients, &under_refresh),
        final_generation = final_generation,
        n_dbs = n_dbs,
        refresh_delta_bytes = refresh_delta_bytes,
        delta_per_round = refresh_delta_bytes as f64 / (final_generation as f64).max(1.0),
        ap_p50 = append_hist.percentile(0.50),
        ap_p99 = append_hist.percentile(0.99),
        ap_p50_h = server::metrics::format_nanos(append_hist.percentile(0.50)),
        ap_p99_h = server::metrics::format_nanos(append_hist.percentile(0.99)),
        proxy_overhead = proxy_overhead,
        fault_errors = under_fault.errors,
        degraded_total = degraded_total,
        breaker_opens = breaker_opens,
        shard_speedup = shard_speedup,
        tenant_overhead = tenant_overhead,
        reloads = reloads,
        rl_p50 = reload_hist.percentile(0.50),
        rl_p99 = reload_hist.percentile(0.99),
        rl_p50_h = server::metrics::format_nanos(reload_hist.percentile(0.50)),
        rl_p99_h = server::metrics::format_nanos(reload_hist.percentile(0.99)),
    );
}
