//! Calibration diagnostic: empirical distributions of the per-word
//! normalized score dispersion, per algorithm and query-length regime.
//! Used to set the thresholds documented in DESIGN.md §6.

use bench::experiment::{profile_collection, AlgoKind, HarnessConfig};
use corpus::TestBedConfig;
use dbselect_core::summary::SummaryView;
use dbselect_core::uncertainty::{score_distribution, UncertaintyConfig, WordPosterior};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selection::CollectionContext;

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    for set in ["trec4", "trec6"] {
        let config = match set {
            "trec4" => TestBedConfig::trec4_like(),
            _ => TestBedConfig::trec6_like(),
        };
        let mut bed = config.scaled_down(scale).build();
        let hc = HarnessConfig::new(sampling::SamplerKind::Qbs, true, 1);
        let profiled = profile_collection(&mut bed, &hc);
        let views: Vec<&dyn SummaryView> = profiled
            .summaries
            .iter()
            .map(|s| s as &dyn SummaryView)
            .collect();
        for algo_kind in AlgoKind::all() {
            let algo = algo_kind.build(&profiled);
            let mut rng = StdRng::seed_from_u64(9);
            let mut raw_cvs = vec![];
            let mut pw_sqrt = vec![]; // CV*sqrt(n)  (sum-form normalization)
            let mut pw_geo = vec![]; // geometric per-word CV (product-form)
            for q in bed.queries.iter().take(15) {
                let n = q.terms.len();
                let ctx = CollectionContext::build(&q.terms, &views);
                for s in profiled.summaries.iter().take(25) {
                    let default = algo.default_score(&q.terms, s, &ctx);
                    let gamma = s.gamma().unwrap_or(-2.0);
                    let posteriors: Vec<WordPosterior> = q
                        .terms
                        .iter()
                        .map(|&w| {
                            let sdf = s.word(w).map_or(0, |st| st.sample_df);
                            WordPosterior::new(sdf, s.sample_size(), s.db_size(), gamma, 160)
                        })
                        .collect();
                    let dist = score_distribution(
                        &posteriors,
                        s.db_size(),
                        |p| algo.score_with_df_fractions(&q.terms, p, s, &ctx) - default,
                        &mut rng,
                        &UncertaintyConfig::default(),
                    );
                    if dist.mean > 0.0 {
                        let cv = dist.std_dev / dist.mean;
                        raw_cvs.push(cv);
                        pw_sqrt.push(cv * (n as f64).sqrt());
                        pw_geo.push(((1.0 + cv * cv).powf(1.0 / n as f64) - 1.0).sqrt());
                    } else {
                        raw_cvs.push(f64::INFINITY);
                        pw_sqrt.push(f64::INFINITY);
                        pw_geo.push(f64::INFINITY);
                    }
                }
            }
            let q = |v: &mut Vec<f64>, p: f64| {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v[((v.len() as f64 - 1.0) * p) as usize]
            };
            println!("{set} {}: raw CV q50={:.2} q80={:.2} q90={:.2} | CV*sqrt(n) q50={:.2} q80={:.2} q90={:.2} | geo q50={:.3} q80={:.3} q90={:.3}",
                algo_kind.name(),
                q(&mut raw_cvs.clone(), 0.5), q(&mut raw_cvs.clone(), 0.8), q(&mut raw_cvs.clone(), 0.9),
                q(&mut pw_sqrt.clone(), 0.5), q(&mut pw_sqrt.clone(), 0.8), q(&mut pw_sqrt.clone(), 0.9),
                q(&mut pw_geo.clone(), 0.5), q(&mut pw_geo.clone(), 0.8), q(&mut pw_geo.clone(), 0.9));
        }
    }
}
