//! Plain-text table and series formatting for the experiment binaries,
//! shaped to echo the paper's tables and figures.

/// Print a fixed-width table with a title, header row, and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Print an `R_k` series (one figure line) as `k: value` pairs.
pub fn print_series(label: &str, ks: &[usize], values: &[f64]) {
    let cells: Vec<String> = ks
        .iter()
        .zip(values)
        .map(|(k, v)| format!("R{k}={v:.3}"))
        .collect();
    println!("{label:<24} {}", cells.join("  "));
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_formats_three_decimals() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(1.0), "1.000");
    }

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "T",
            &["a", "b"],
            &[vec!["1".into()], vec!["22".into(), "333".into()]],
        );
    }

    #[test]
    fn print_series_handles_mismatched_and_empty_input() {
        print_series("empty", &[], &[]);
        print_series("label", &[1, 5, 10], &[0.1, 0.25, 0.333]);
    }

    #[test]
    fn print_table_with_no_rows() {
        print_table("Empty", &["col"], &[]);
    }
}
