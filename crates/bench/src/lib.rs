//! `bench` — the experiment harness that regenerates every table and
//! figure of the paper's evaluation (see `EXPERIMENTS.md` at the repository
//! root for the experiment index), plus Criterion micro-benchmarks.
//!
//! The heavy lifting lives in [`experiment`]; the `repro` binary provides
//! the command-line entry points.

pub mod experiment;
pub mod report;

pub use experiment::{
    profile_collection, run_selection, shrink_collection, AlgoKind, HarnessConfig,
    ProfiledCollection, SelectionRun, Strategy,
};
