//! Regression guard for the broker refactor: the batched
//! [`SelectionEngine`] must reproduce the per-query `adaptive_rank` path
//! bit for bit — same ranked indices, same `f64` score bits, same
//! shrinkage decisions — for every (algorithm, shrinkage mode) pair on a
//! seeded testbed, regardless of worker-thread count.

use bench::{profile_collection, AlgoKind, HarnessConfig};
use broker::SelectionEngine;
use corpus::TestBedConfig;
use sampling::scheduler::db_rng;
use sampling::SamplerKind;
use selection::{adaptive_rank, AdaptiveConfig, AdaptiveOutcome, ShrinkageMode, SummaryPair};
use textindex::TermId;

fn assert_outcomes_match(reference: &AdaptiveOutcome, engine: &AdaptiveOutcome, label: &str) {
    assert_eq!(
        reference.used_shrinkage, engine.used_shrinkage,
        "{label}: shrinkage decisions diverged"
    );
    assert_eq!(
        reference.ranking.len(),
        engine.ranking.len(),
        "{label}: ranking lengths diverged"
    );
    for (r, e) in reference.ranking.iter().zip(&engine.ranking) {
        assert_eq!(r.index, e.index, "{label}: ranked database order diverged");
        assert_eq!(
            r.score.to_bits(),
            e.score.to_bits(),
            "{label}: score bits diverged at db {} ({} vs {})",
            r.index,
            r.score,
            e.score
        );
    }
}

#[test]
fn engine_is_bit_identical_to_adaptive_rank_for_all_algorithms_and_modes() {
    let mut bed = TestBedConfig::tiny(55).build();
    let config = HarnessConfig::new(SamplerKind::Qbs, true, 5500);
    let profiled = profile_collection(&mut bed, &config);

    let names: Vec<String> = bed.databases.iter().map(|d| d.name.clone()).collect();
    let catalog = std::sync::Arc::new(profiled.catalog(&names));
    let pairs: Vec<SummaryPair<'_>> = profiled
        .summaries
        .iter()
        .zip(&profiled.shrunk)
        .map(|(unshrunk, shrunk)| SummaryPair { unshrunk, shrunk })
        .collect();
    let queries: Vec<Vec<TermId>> = bed.queries.iter().map(|q| q.terms.clone()).collect();
    assert!(!queries.is_empty(), "testbed must supply queries");

    let seed = 9_001u64;
    for algo_kind in AlgoKind::all() {
        let algorithm = algo_kind.build(&profiled);
        for mode in [
            ShrinkageMode::Adaptive,
            ShrinkageMode::Always,
            ShrinkageMode::Never,
        ] {
            let adaptive_config = AdaptiveConfig {
                mode,
                ..Default::default()
            };

            // Reference: the pre-refactor path, one full-scan ranking per
            // query with the same per-query RNG derivation the engine uses.
            let reference: Vec<AdaptiveOutcome> = queries
                .iter()
                .enumerate()
                .map(|(qi, query)| {
                    let mut rng = db_rng(seed, qi);
                    adaptive_rank(
                        algorithm.as_ref(),
                        query,
                        &pairs,
                        &adaptive_config,
                        &mut rng,
                    )
                })
                .collect();

            let engine = SelectionEngine::new(
                std::sync::Arc::clone(&catalog),
                std::sync::Arc::clone(&algorithm),
                adaptive_config,
                broker::DEFAULT_CACHE_CAPACITY,
            );
            for threads in [1, 8] {
                let batched = engine.route_batch(&queries, seed, threads);
                assert_eq!(batched.len(), reference.len());
                for (qi, (r, e)) in reference.iter().zip(&batched).enumerate() {
                    let label = format!(
                        "{} / {mode:?} / {threads} threads / query {qi}",
                        algo_kind.name()
                    );
                    assert_outcomes_match(r, e, &label);
                }
            }
        }
    }
}
