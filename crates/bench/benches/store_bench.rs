//! Criterion micro-benchmarks for the persistence layer: serialization and
//! deserialization throughput of a profiled collection.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use corpus::TestBedConfig;
use sampling::{profile_qbs, PipelineConfig};
use store::{CollectionStore, StoredDatabase};

fn build_fixture() -> CollectionStore {
    let bed = TestBedConfig::tiny(40).build();
    let mut rng = StdRng::seed_from_u64(40);
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let databases = bed
        .databases
        .iter()
        .map(|tdb| {
            let profile = profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng);
            StoredDatabase {
                name: tdb.name.clone(),
                classification: tdb.category,
                summary: profile.summary,
                sample_docs: profile.sample.docs.into_iter().map(|d| d.tokens).collect(),
            }
        })
        .collect();
    CollectionStore {
        dict: bed.dict.clone(),
        hierarchy: bed.hierarchy.clone(),
        databases,
    }
}

fn bench_write(c: &mut Criterion) {
    let store = build_fixture();
    c.bench_function("store/serialize", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            store.write_to(&mut bytes).unwrap();
            black_box(bytes)
        })
    });
}

fn bench_read(c: &mut Criterion) {
    let store = build_fixture();
    let mut bytes = Vec::new();
    store.write_to(&mut bytes).unwrap();
    c.bench_function("store/deserialize", |b| {
        b.iter(|| CollectionStore::read_from(black_box(&mut bytes.as_slice())).unwrap())
    });
}

fn bench_reshrink(c: &mut Criterion) {
    let store = build_fixture();
    c.bench_function("store/shrink_all_on_load", |b| {
        b.iter(|| {
            store.shrink_all(black_box(
                dbselect_core::category_summary::CategoryWeighting::BySize,
            ))
        })
    });
}

criterion_group!(benches, bench_write, bench_read, bench_reshrink);
criterion_main!(benches);
