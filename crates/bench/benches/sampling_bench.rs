//! Criterion micro-benchmarks for the sampling pipeline: QBS and FPS
//! document sampling, size estimation, and frequency estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use corpus::TestBedConfig;
use dbselect_core::freqest::FrequencyEstimator;
use sampling::{
    fps_sample, qbs_sample, sample_resample, FpsConfig, ProbeClassifier, QbsConfig,
    SizeEstimationConfig,
};

fn bench_qbs(c: &mut Criterion) {
    let bed = TestBedConfig::tiny(5).build();
    let db = &bed.databases[0].db;
    let config = QbsConfig {
        target_sample_size: 40,
        ..Default::default()
    };
    c.bench_function("sampling/qbs_40_docs", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            qbs_sample(black_box(db), &bed.seed_lexicon, &config, &mut rng)
        })
    });
}

fn bench_fps(c: &mut Criterion) {
    let mut bed = TestBedConfig::tiny(6).build();
    let mut rng = StdRng::seed_from_u64(6);
    let examples = bed.training_documents(4, &mut rng);
    let classifier = ProbeClassifier::train(&bed.hierarchy, &examples, 5);
    let db = &bed.databases[0].db;
    let config = FpsConfig::default();
    c.bench_function("sampling/fps_full_probe", |b| {
        b.iter(|| fps_sample(black_box(db), &bed.hierarchy, &classifier, &config))
    });
}

fn bench_classifier_training(c: &mut Criterion) {
    let mut bed = TestBedConfig::tiny(7).build();
    let mut rng = StdRng::seed_from_u64(7);
    let examples = bed.training_documents(4, &mut rng);
    c.bench_function("sampling/train_probe_classifier", |b| {
        b.iter(|| ProbeClassifier::train(black_box(&bed.hierarchy), &examples, 5))
    });
}

fn bench_size_estimation(c: &mut Criterion) {
    let bed = TestBedConfig::tiny(8).build();
    let db = &bed.databases[0].db;
    let mut rng = StdRng::seed_from_u64(8);
    let qbs = QbsConfig {
        target_sample_size: 40,
        ..Default::default()
    };
    let sample = qbs_sample(db, &bed.seed_lexicon, &qbs, &mut rng);
    c.bench_function("sampling/sample_resample", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            sample_resample(
                black_box(db),
                &sample,
                &SizeEstimationConfig::default(),
                &mut rng,
            )
        })
    });
}

fn bench_frequency_estimation(c: &mut Criterion) {
    let bed = TestBedConfig::tiny(9).build();
    let db = &bed.databases[0].db;
    let mut rng = StdRng::seed_from_u64(10);
    let qbs = QbsConfig {
        target_sample_size: 60,
        checkpoint_interval: 15,
        ..Default::default()
    };
    let sample = qbs_sample(db, &bed.seed_lexicon, &qbs, &mut rng);
    c.bench_function("sampling/mandelbrot_regression", |b| {
        b.iter(|| FrequencyEstimator::from_checkpoints(black_box(&sample.checkpoints)))
    });
}

criterion_group!(
    benches,
    bench_qbs,
    bench_fps,
    bench_classifier_training,
    bench_size_estimation,
    bench_frequency_estimation
);
criterion_main!(benches);
