//! Criterion micro-benchmarks for the broker serving layer: batched query
//! routing through the [`SelectionEngine`] versus the per-query full-scan
//! baseline, catalog construction versus loading a frozen catalog, and the
//! effect of the memoized posterior cache on the adaptive uncertainty test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use bench::experiment::{profile_collection, AlgoKind, HarnessConfig, ProfiledCollection};
use broker::{Catalog, CatalogEntry, SelectionEngine};
use corpus::{TestBed, TestBedConfig};
use sampling::scheduler::db_rng;
use sampling::{profile_qbs, PipelineConfig, SamplerKind};
use selection::{adaptive_rank, AdaptiveConfig, ShrinkageMode, SummaryPair};
use store::catalog::StoredCatalog;
use store::snapshot::ServingSnapshot;
use store::{CollectionStore, StoredDatabase};
use textindex::TermId;

fn fixture() -> (TestBed, ProfiledCollection) {
    let mut bed = TestBedConfig::tiny(30).build();
    let config = HarnessConfig::new(SamplerKind::Qbs, true, 30);
    let profiled = profile_collection(&mut bed, &config);
    (bed, profiled)
}

fn catalog_entries(bed: &TestBed, profiled: &ProfiledCollection) -> Vec<CatalogEntry> {
    bed.databases
        .iter()
        .zip(profiled.summaries.iter().zip(&profiled.shrunk))
        .map(|(tdb, (unshrunk, shrunk))| CatalogEntry {
            name: tdb.name.clone(),
            unshrunk: unshrunk.clone(),
            shrunk: shrunk.clone(),
        })
        .collect()
}

fn bench_batch_route(c: &mut Criterion) {
    let (bed, profiled) = fixture();
    let catalog = std::sync::Arc::new(
        profiled.catalog(
            &bed.databases
                .iter()
                .map(|d| d.name.clone())
                .collect::<Vec<_>>(),
        ),
    );
    let queries: Vec<Vec<TermId>> = bed.queries.iter().map(|q| q.terms.clone()).collect();
    let config = AdaptiveConfig {
        mode: ShrinkageMode::Adaptive,
        ..Default::default()
    };
    let pairs: Vec<SummaryPair<'_>> = profiled
        .summaries
        .iter()
        .zip(&profiled.shrunk)
        .map(|(unshrunk, shrunk)| SummaryPair { unshrunk, shrunk })
        .collect();

    let mut group = c.benchmark_group("broker/batch_route");
    group.bench_function("baseline_per_query_rescan", |b| {
        let algo = AlgoKind::Cori.build(&profiled);
        b.iter(|| {
            queries
                .iter()
                .enumerate()
                .map(|(qi, query)| {
                    let mut rng = db_rng(77, qi);
                    adaptive_rank(black_box(algo.as_ref()), query, &pairs, &config, &mut rng)
                })
                .collect::<Vec<_>>()
        })
    });
    for threads in [1usize, 4] {
        let algo = AlgoKind::Cori.build(&profiled);
        let engine = SelectionEngine::new(
            std::sync::Arc::clone(&catalog),
            algo,
            config,
            broker::DEFAULT_CACHE_CAPACITY,
        );
        group.bench_with_input(BenchmarkId::new("engine", threads), &threads, |b, &t| {
            b.iter(|| engine.route_batch(black_box(&queries), 77, t))
        });
    }
    group.finish();
}

fn bench_catalog_build_vs_load(c: &mut Criterion) {
    let (bed, profiled) = fixture();
    let entries = catalog_entries(&bed, &profiled);

    // A frozen catalog needs a real CollectionStore underneath.
    let mut rng = StdRng::seed_from_u64(40);
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let databases = bed
        .databases
        .iter()
        .map(|tdb| {
            let profile = profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng);
            StoredDatabase {
                name: tdb.name.clone(),
                classification: tdb.category,
                summary: profile.summary,
                sample_docs: profile.sample.docs.into_iter().map(|d| d.tokens).collect(),
            }
        })
        .collect();
    let store = CollectionStore {
        dict: bed.dict.clone(),
        hierarchy: bed.hierarchy.clone(),
        databases,
    };
    let frozen = StoredCatalog::freeze(
        store,
        dbselect_core::category_summary::CategoryWeighting::BySize,
    );
    let mut v1_bytes = Vec::new();
    frozen.write_to(&mut v1_bytes).unwrap();
    let snapshot = ServingSnapshot::from_stored(&frozen);
    let mut v2_bytes = Vec::new();
    snapshot.write_to(&mut v2_bytes).unwrap();

    eprintln!(
        "[fixture] v1 {} bytes, v2 {} bytes",
        v1_bytes.len(),
        v2_bytes.len()
    );
    let mut group = c.benchmark_group("broker/catalog");
    group.bench_function("build_postings_from_summaries", |b| {
        b.iter(|| Catalog::build(black_box(entries.clone())))
    });
    // The serving hot path: a v2 snapshot decodes straight into columnar
    // arrays — no shrunk-summary reassembly, no posting reconstruction.
    group.bench_function("load_frozen_no_em", |b| {
        b.iter(|| ServingSnapshot::read_from(&mut black_box(v2_bytes.as_slice())).unwrap())
    });
    // The legacy path a v1 file still takes: decode, rebuild shrunk
    // summaries from the recorded λ fit, rebuild postings.
    group.bench_function("load_v1_rebuild", |b| {
        b.iter(|| {
            let frozen = StoredCatalog::read_from(&mut black_box(v1_bytes.as_slice())).unwrap();
            frozen.to_catalog()
        })
    });
    group.finish();
}

/// A serving-scale synthetic catalog: `n` databases over a 400-term
/// vocabulary, ~24 terms each, so every query word posts in ~6% of the
/// catalog. The testbed fixture (12 databases) is too small for top-k
/// pruning to have anything to skip; federated serving is exactly the
/// regime where the catalog dwarfs `k`.
fn synthetic_catalog(n: usize) -> (std::sync::Arc<Catalog>, Vec<Vec<TermId>>) {
    use dbselect_core::category_summary::SummaryComponent;
    use dbselect_core::shrinkage::{shrink, ShrinkageConfig};
    use dbselect_core::summary::{ContentSummary, WordStats};
    use std::collections::{BTreeSet, HashMap};

    const VOCAB: u64 = 400;
    let component = std::sync::Arc::new(SummaryComponent {
        p_df: (0..VOCAB as u32).map(|t| (t, 0.01)).collect(),
        p_tf: (0..VOCAB as u32).map(|t| (t, 0.003)).collect(),
    });
    let entries: Vec<CatalogEntry> = (0..n)
        .map(|i| {
            let db_size = 500.0 + (i as f64 * 37.0) % 90_000.0;
            let words: HashMap<TermId, WordStats> = (0..24u64)
                .map(|j| ((i as u64 * 131 + j * 97) % VOCAB) as u32)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .enumerate()
                .map(|(j, t)| {
                    let sample_df = ((i + j * 7) % 89 + 1) as u32;
                    let df = f64::from(sample_df) / 100.0 * db_size;
                    (
                        t,
                        WordStats {
                            sample_df,
                            df,
                            tf: df * 2.0,
                        },
                    )
                })
                .collect();
            let unshrunk = ContentSummary::new(db_size, 100, words);
            let shrunk = shrink(
                &unshrunk,
                &[std::sync::Arc::clone(&component)],
                &ShrinkageConfig::default(),
            );
            CatalogEntry {
                name: format!("db{i}"),
                unshrunk,
                shrunk,
            }
        })
        .collect();
    let queries: Vec<Vec<TermId>> = (0..20u64)
        .map(|q| (0..4u64).map(|w| ((q * 53 + w * 17) % VOCAB) as u32).collect())
        .collect();
    (std::sync::Arc::new(Catalog::build(entries)), queries)
}

/// Pruned top-k vs. full-ranking routing on the `/route` hot path, over a
/// 500-database synthetic catalog. The `full` baselines call `route`
/// (per-db probability vectors, virtual dispatch per summary); the
/// `pruned` rows call `route_topk` (batch kernels over the CSR slabs plus
/// maxscore early termination). `never` mode is pure scoring; `adaptive`
/// includes the Monte-Carlo choose phase the pruned path must leave
/// untouched.
fn bench_topk_pruning(c: &mut Criterion) {
    let (catalog, queries) = synthetic_catalog(500);

    let mut group = c.benchmark_group("broker/route_topk");
    for (mode_name, mode) in [
        ("never", ShrinkageMode::Never),
        ("adaptive", ShrinkageMode::Adaptive),
    ] {
        let config = AdaptiveConfig {
            mode,
            ..Default::default()
        };
        let engine = SelectionEngine::new(
            std::sync::Arc::clone(&catalog),
            std::sync::Arc::new(selection::Cori::default()),
            config,
            broker::DEFAULT_CACHE_CAPACITY,
        );
        group.bench_function(BenchmarkId::new("full", mode_name), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .enumerate()
                    .map(|(qi, query)| {
                        let mut rng = db_rng(9, qi);
                        engine.route(black_box(query), &mut rng)
                    })
                    .collect::<Vec<_>>()
            })
        });
        for k in [1usize, 5, 10] {
            group.bench_function(BenchmarkId::new(format!("pruned/{mode_name}"), k), |b| {
                b.iter(|| {
                    queries
                        .iter()
                        .enumerate()
                        .map(|(qi, query)| {
                            let mut rng = db_rng(9, qi);
                            engine.route_topk(black_box(query), k, &mut rng)
                        })
                        .collect::<Vec<_>>()
                })
            });
        }
    }
    group.finish();
}

/// Refresh-round cost scaling on the tiny(30) testbed: applying `touched`
/// re-probes (restricted EM refit per database) and serializing the
/// round's delta record, versus freezing and serializing the full
/// snapshot — the delta path's whole point is that time and bytes track
/// the touched-db count, not the catalog.
fn bench_refresh(c: &mut Criterion) {
    use store::delta::DeltaRecord;
    use store::refresh::RefreshSession;

    let bed = TestBedConfig::tiny(30).build();
    let mut rng = StdRng::seed_from_u64(40);
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        ..Default::default()
    };
    let databases: Vec<StoredDatabase> = bed
        .databases
        .iter()
        .map(|tdb| {
            let profile = profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng);
            StoredDatabase {
                name: tdb.name.clone(),
                classification: tdb.category,
                summary: profile.summary,
                sample_docs: Vec::new(),
            }
        })
        .collect();
    let store = CollectionStore {
        dict: bed.dict.clone(),
        hierarchy: bed.hierarchy.clone(),
        databases,
    };
    let frozen = StoredCatalog::freeze(
        store,
        dbselect_core::category_summary::CategoryWeighting::BySize,
    );

    // Fresh re-probe results (a different sampling seed stands in for
    // drifted content), computed once outside the measured loops.
    let mut rng = StdRng::seed_from_u64(41);
    let probes: Vec<_> = bed
        .databases
        .iter()
        .map(|tdb| profile_qbs(&tdb.db, &bed.seed_lexicon, &pipeline, &mut rng).summary)
        .collect();

    let mut session = RefreshSession::new(frozen);
    let dict_base = session.dict().len() as u32;

    let mut full_bytes = Vec::new();
    session.freeze_full().write_to(&mut full_bytes).unwrap();

    let mut group = c.benchmark_group("broker/refresh");
    // Baseline: what shipping a refresh WITHOUT deltas would cost — a
    // full freeze plus a full snapshot serialization, per round.
    group.bench_function("full_freeze_serialize", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            session.freeze_full().write_to(&mut bytes).unwrap();
            bytes.len()
        })
    });
    for touched in [1usize, 2, 4, 8] {
        // Report the delta's size alongside the timing rows.
        let patches: Vec<_> = (0..touched)
            .map(|db| session.apply_probe(db, probes[db].clone()))
            .collect();
        let record = DeltaRecord {
            parent: 0,
            generation: 1,
            dict_base,
            appended_terms: Vec::new(),
            patches,
        };
        let mut delta_bytes = Vec::new();
        record.write_to(&mut delta_bytes).unwrap();
        eprintln!(
            "[refresh] touched {touched}: delta {} bytes vs full snapshot {} bytes",
            delta_bytes.len(),
            full_bytes.len()
        );
        group.bench_with_input(
            BenchmarkId::new("round", touched),
            &touched,
            |b, &touched| {
                b.iter(|| {
                    let patches: Vec<_> = (0..touched)
                        .map(|db| session.apply_probe(db, black_box(probes[db].clone())))
                        .collect();
                    let record = DeltaRecord {
                        parent: 0,
                        generation: 1,
                        dict_base,
                        appended_terms: Vec::new(),
                        patches,
                    };
                    let mut bytes = Vec::new();
                    record.write_to(&mut bytes).unwrap();
                    bytes.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_posterior_cache(c: &mut Criterion) {
    let (bed, profiled) = fixture();
    let catalog = std::sync::Arc::new(
        profiled.catalog(
            &bed.databases
                .iter()
                .map(|d| d.name.clone())
                .collect::<Vec<_>>(),
        ),
    );
    let algo = AlgoKind::Cori.build(&profiled);
    let config = AdaptiveConfig {
        mode: ShrinkageMode::Adaptive,
        ..Default::default()
    };
    let engine = SelectionEngine::new(catalog, algo, config, broker::DEFAULT_CACHE_CAPACITY);
    let query = &bed.queries[0].terms;

    let mut group = c.benchmark_group("broker/posterior_cache");
    group.bench_function("cold", |b| {
        b.iter(|| {
            engine.clear_cache();
            let mut rng = db_rng(5, 0);
            engine.route(black_box(query), &mut rng)
        })
    });
    // Warm the cache once, then measure pure cache-hit routing.
    let mut rng = db_rng(5, 0);
    engine.route(query, &mut rng);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut rng = db_rng(5, 0);
            engine.route(black_box(query), &mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_route,
    bench_topk_pruning,
    bench_catalog_build_vs_load,
    bench_refresh,
    bench_posterior_cache
);
criterion_main!(benches);
