//! Criterion micro-benchmarks for the shrinkage machinery: category
//! aggregation, the held-out EM, and lazy shrunk-summary lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use corpus::TestBedConfig;
use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting};
use dbselect_core::hierarchy::CategoryId;
use dbselect_core::shrinkage::{shrink, ShrinkageConfig};
use dbselect_core::summary::{ContentSummary, SummaryView};
use sampling::{qbs_sample, QbsConfig};

struct Fixture {
    bed: corpus::TestBed,
    summaries: Vec<ContentSummary>,
    classifications: Vec<CategoryId>,
}

fn fixture() -> Fixture {
    let bed = TestBedConfig::tiny(20).build();
    let mut rng = StdRng::seed_from_u64(20);
    let config = QbsConfig {
        target_sample_size: 60,
        ..Default::default()
    };
    let summaries: Vec<ContentSummary> = bed
        .databases
        .iter()
        .map(|d| {
            let sample = qbs_sample(&d.db, &bed.seed_lexicon, &config, &mut rng);
            sample.raw_summary()
        })
        .collect();
    let classifications = bed.true_categories();
    Fixture {
        bed,
        summaries,
        classifications,
    }
}

fn bench_category_aggregation(c: &mut Criterion) {
    let f = fixture();
    let refs: Vec<(CategoryId, &ContentSummary)> = f
        .classifications
        .iter()
        .copied()
        .zip(f.summaries.iter())
        .collect();
    let mut group = c.benchmark_group("shrinkage/aggregate_categories");
    for weighting in [CategoryWeighting::BySize, CategoryWeighting::Uniform] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{weighting:?}")),
            &weighting,
            |b, &w| b.iter(|| CategorySummaries::build(black_box(&f.bed.hierarchy), &refs, w)),
        );
    }
    group.finish();
}

fn bench_em(c: &mut Criterion) {
    let f = fixture();
    let refs: Vec<(CategoryId, &ContentSummary)> = f
        .classifications
        .iter()
        .copied()
        .zip(f.summaries.iter())
        .collect();
    let cats = CategorySummaries::build(&f.bed.hierarchy, &refs, CategoryWeighting::BySize);
    let comps = cats.components_for(
        &f.bed.hierarchy,
        f.classifications[0],
        &f.summaries[0],
        true,
    );
    let config = ShrinkageConfig {
        uniform_p: 1.0 / f.bed.dict.len() as f64,
        ..Default::default()
    };
    c.bench_function("shrinkage/em_one_database", |b| {
        b.iter(|| shrink(black_box(&f.summaries[0]), &comps, &config))
    });
}

fn bench_shrunk_lookup(c: &mut Criterion) {
    let f = fixture();
    let refs: Vec<(CategoryId, &ContentSummary)> = f
        .classifications
        .iter()
        .copied()
        .zip(f.summaries.iter())
        .collect();
    let cats = CategorySummaries::build(&f.bed.hierarchy, &refs, CategoryWeighting::BySize);
    let comps = cats.components_for(
        &f.bed.hierarchy,
        f.classifications[0],
        &f.summaries[0],
        true,
    );
    let config = ShrinkageConfig {
        uniform_p: 1e-5,
        ..Default::default()
    };
    let shrunk = shrink(&f.summaries[0], &comps, &config);
    let probes: Vec<u32> = (0..256).collect();
    c.bench_function("shrinkage/lazy_p_df_256_lookups", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &probes {
                acc += shrunk.p_df(t);
            }
            black_box(acc)
        })
    });
}

fn bench_component_cache(c: &mut Criterion) {
    let f = fixture();
    let refs: Vec<(CategoryId, &ContentSummary)> = f
        .classifications
        .iter()
        .copied()
        .zip(f.summaries.iter())
        .collect();
    let cats = CategorySummaries::build(&f.bed.hierarchy, &refs, CategoryWeighting::BySize);
    // Warm the cache once, then measure the amortized per-database cost.
    let _ = cats.components_for(
        &f.bed.hierarchy,
        f.classifications[0],
        &f.summaries[0],
        true,
    );
    c.bench_function("shrinkage/components_cached", |b| {
        b.iter(|| {
            cats.components_for(
                black_box(&f.bed.hierarchy),
                f.classifications[0],
                &f.summaries[0],
                true,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_category_aggregation,
    bench_em,
    bench_shrunk_lookup,
    bench_component_cache
);
criterion_main!(benches);
