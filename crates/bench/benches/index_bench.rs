//! Criterion micro-benchmarks for the text-indexing substrate: index
//! construction and query evaluation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use corpus::TestBedConfig;
use textindex::{InvertedIndex, SearchEngine};

fn bench_index_build(c: &mut Criterion) {
    let bed = TestBedConfig::tiny(1).build();
    let docs = bed.databases[0].db.documents().to_vec();
    c.bench_function("index/build_small_db", |b| {
        b.iter(|| InvertedIndex::build(black_box(&docs)))
    });
}

fn bench_queries(c: &mut Criterion) {
    let bed = TestBedConfig::tiny(2).build();
    let db = &bed.databases[0].db;
    let engine = SearchEngine::new(db.index());
    let mut group = c.benchmark_group("index/query");
    for n_terms in [1usize, 2, 4] {
        let query: Vec<u32> = bed.queries[0]
            .terms
            .iter()
            .copied()
            .cycle()
            .take(n_terms)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n_terms), &query, |b, q| {
            b.iter(|| engine.search(black_box(q), 20))
        });
    }
    group.finish();
}

fn bench_stemming(c: &mut Criterion) {
    let words = [
        "classification",
        "databases",
        "hypertension",
        "running",
        "selection",
    ];
    c.bench_function("index/porter_stem_5_words", |b| {
        b.iter(|| {
            for w in &words {
                black_box(textindex::porter_stem(w));
            }
        })
    });
}

fn bench_tokenize(c: &mut Criterion) {
    let text = "Database selection is an important step when searching over large \
                numbers of distributed text databases; the selection task relies on \
                statistical summaries of the database contents.";
    c.bench_function("index/tokenize_paragraph", |b| {
        b.iter(|| textindex::tokenize(black_box(text)))
    });
}

fn bench_match_counts(c: &mut Criterion) {
    let bed = TestBedConfig::tiny(3).build();
    let db = &bed.databases[0].db;
    let engine = SearchEngine::new(db.index());
    let mut rng = StdRng::seed_from_u64(3);
    let words: Vec<u32> = (0..64)
        .map(|_| {
            use rand::Rng;
            bed.seed_lexicon[rng.gen_range(0..bed.seed_lexicon.len())]
        })
        .collect();
    c.bench_function("index/match_count_64_words", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &w in &words {
                total += engine.match_count(w);
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_index_build,
    bench_queries,
    bench_stemming,
    bench_tokenize,
    bench_match_counts
);
criterion_main!(benches);
