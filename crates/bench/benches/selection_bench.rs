//! Criterion micro-benchmarks for database selection: per-algorithm scoring
//! throughput, the adaptive uncertainty test, and hierarchical descent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use bench::experiment::{profile_collection, AlgoKind, HarnessConfig};
use corpus::TestBedConfig;
use dbselect_core::summary::SummaryView;
use sampling::SamplerKind;
use selection::{
    adaptive_rank, rank_databases, AdaptiveConfig, CollectionContext, HierarchicalSelector,
    ShrinkageMode, SummaryPair,
};

fn fixture() -> (corpus::TestBed, bench::experiment::ProfiledCollection) {
    let mut bed = TestBedConfig::tiny(30).build();
    let config = HarnessConfig::new(SamplerKind::Qbs, true, 30);
    let profiled = profile_collection(&mut bed, &config);
    (bed, profiled)
}

fn bench_flat_ranking(c: &mut Criterion) {
    let (bed, profiled) = fixture();
    let views: Vec<&dyn SummaryView> = profiled
        .summaries
        .iter()
        .map(|s| s as &dyn SummaryView)
        .collect();
    let query = &bed.queries[0].terms;
    let mut group = c.benchmark_group("selection/flat_rank");
    for algo_kind in AlgoKind::all() {
        let algo = algo_kind.build(&profiled);
        group.bench_with_input(
            BenchmarkId::from_parameter(algo_kind.name()),
            &algo,
            |b, a| b.iter(|| rank_databases(black_box(a.as_ref()), query, &views)),
        );
    }
    group.finish();
}

fn bench_adaptive_decision(c: &mut Criterion) {
    let (bed, profiled) = fixture();
    let pairs: Vec<SummaryPair<'_>> = profiled
        .summaries
        .iter()
        .zip(&profiled.shrunk)
        .map(|(unshrunk, shrunk)| SummaryPair { unshrunk, shrunk })
        .collect();
    let query = &bed.queries[0].terms;
    let mut group = c.benchmark_group("selection/adaptive_rank");
    for algo_kind in AlgoKind::all() {
        let algo = algo_kind.build(&profiled);
        group.bench_with_input(
            BenchmarkId::from_parameter(algo_kind.name()),
            &algo,
            |b, a| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(31);
                    let config = AdaptiveConfig {
                        mode: ShrinkageMode::Adaptive,
                        ..Default::default()
                    };
                    adaptive_rank(black_box(a.as_ref()), query, &pairs, &config, &mut rng)
                })
            },
        );
    }
    group.finish();
}

fn bench_hierarchical(c: &mut Criterion) {
    let (bed, profiled) = fixture();
    let selector = HierarchicalSelector::new(
        &bed.hierarchy,
        &profiled.summaries,
        &profiled.classifications,
        &profiled.category_summaries,
    );
    let algo = AlgoKind::Cori.build(&profiled);
    let query = &bed.queries[0].terms;
    c.bench_function("selection/hierarchical_rank", |b| {
        b.iter(|| selector.rank(black_box(algo.as_ref()), query, 10))
    });
}

fn bench_collection_context(c: &mut Criterion) {
    let (bed, profiled) = fixture();
    let views: Vec<&dyn SummaryView> = profiled
        .summaries
        .iter()
        .map(|s| s as &dyn SummaryView)
        .collect();
    let query = &bed.queries[0].terms;
    c.bench_function("selection/collection_context", |b| {
        b.iter(|| CollectionContext::build(black_box(query), &views))
    });
}

criterion_group!(
    benches,
    bench_flat_ranking,
    bench_adaptive_decision,
    bench_hierarchical,
    bench_collection_context
);
criterion_main!(benches);
