//! The frozen routing catalog.
//!
//! Profiling and shrinkage produce, per database, a sample-based summary
//! `Ŝ(D)`, a shrunk summary `R̂(D)`, and a fitted power-law exponent γ.
//! [`Catalog::build`] freezes those into an immutable, query-serving form
//! and derives a **summary-level inverted index**: for every term, the
//! posting list of databases whose unshrunk summary mentions it, with the
//! `p̂(w|D)` estimate and the sample document frequency that the uncertainty
//! machinery needs. Collection-level statistics that a per-query scan used
//! to recompute — `m`, `mcw`, and the effective `cf(w)` counts of Section
//! 5.3 — become catalog constants or single posting-list lookups.

use std::collections::HashMap;

use dbselect_core::shrinkage::ShrunkSummary;
use dbselect_core::summary::{ContentSummary, SummaryView};
use selection::CollectionContext;
use textindex::TermId;

/// One database's entry in a term's posting list.
#[derive(Debug, Clone, Copy)]
pub struct Posting {
    /// Database index within the catalog.
    pub db: u32,
    /// The unshrunk summary's `p̂(w|D)` (document-frequency model).
    pub p_df: f64,
    /// Number of sample documents containing the word (drives the
    /// word-posterior grid of Section 4).
    pub sample_df: u32,
    /// Whether the database "effectively" contains the word under the
    /// Section-5.3 rounding rule `round(|D̂|·p̂(w|D)) ≥ 1`.
    pub effective: bool,
}

/// A term's posting list plus the statistic read off it most often.
#[derive(Debug, Clone, Default)]
pub struct PostingList {
    /// Postings in ascending database order.
    pub entries: Vec<Posting>,
    /// Number of `effective` entries — the unshrunk `cf(w)`.
    pub effective_count: u32,
}

/// Everything [`Catalog::build`] needs per database.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Database name (for reports).
    pub name: String,
    /// The sample-based summary `Ŝ(D)`.
    pub unshrunk: ContentSummary,
    /// The shrinkage-based summary `R̂(D)`.
    pub shrunk: ShrunkSummary,
}

/// A profiled collection frozen for serving.
#[derive(Debug, Clone)]
pub struct Catalog {
    names: Vec<String>,
    unshrunk: Vec<ContentSummary>,
    shrunk: Vec<ShrunkSummary>,
    /// γ per database (the Appendix-A fit, or the generic −2 fallback),
    /// resolved once so the hot path never re-inspects the summary.
    gammas: Vec<f64>,
    /// Mean database word count over the whole collection. Constant across
    /// queries *and* summary choices: a shrunk summary inherits its
    /// database's word count, so `mcw` is invariant under the adaptive
    /// per-database choice.
    mcw: f64,
    postings: HashMap<TermId, PostingList>,
}

impl Catalog {
    /// Freeze a profiled collection.
    pub fn build(entries: impl IntoIterator<Item = CatalogEntry>) -> Self {
        let mut names = Vec::new();
        let mut unshrunk = Vec::new();
        let mut shrunk = Vec::new();
        for e in entries {
            names.push(e.name);
            unshrunk.push(e.unshrunk);
            shrunk.push(e.shrunk);
        }
        let gammas = unshrunk.iter().map(|s| s.gamma().unwrap_or(-2.0)).collect();
        // Same summation order as `CollectionContext::build` over views in
        // database order, so the constant is bit-identical to the scan.
        let mcw = if unshrunk.is_empty() {
            0.0
        } else {
            unshrunk.iter().map(|s| s.word_count()).sum::<f64>() / unshrunk.len() as f64
        };
        let mut postings: HashMap<TermId, PostingList> = HashMap::new();
        for (db, summary) in unshrunk.iter().enumerate() {
            // Iterating databases in order keeps every posting list sorted
            // by database index without an explicit sort.
            let mut terms: Vec<TermId> = summary.iter().map(|(t, _)| t).collect();
            terms.sort_unstable();
            for t in terms {
                let stats = summary.word(t).expect("term just listed");
                let effective = summary.effectively_contains(t);
                let list = postings.entry(t).or_default();
                list.entries.push(Posting {
                    db: db as u32,
                    p_df: summary.p_df(t),
                    sample_df: stats.sample_df,
                    effective,
                });
                list.effective_count += u32::from(effective);
            }
        }
        Catalog {
            names,
            unshrunk,
            shrunk,
            gammas,
            mcw,
            postings,
        }
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.unshrunk.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.unshrunk.is_empty()
    }

    /// Database names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The unshrunk summary `Ŝ(D)` of database `db`.
    pub fn unshrunk(&self, db: usize) -> &ContentSummary {
        &self.unshrunk[db]
    }

    /// The shrunk summary `R̂(D)` of database `db`.
    pub fn shrunk(&self, db: usize) -> &ShrunkSummary {
        &self.shrunk[db]
    }

    /// The resolved power-law exponent γ of database `db`.
    pub fn gamma(&self, db: usize) -> f64 {
        self.gammas[db]
    }

    /// Mean database word count (CORI's `mcw`), a catalog constant.
    pub fn mcw(&self) -> f64 {
        self.mcw
    }

    /// The posting list of `term`, if any database mentions it.
    pub fn postings(&self, term: TermId) -> Option<&PostingList> {
        self.postings.get(&term)
    }

    /// Number of distinct terms with a posting list.
    pub fn indexed_terms(&self) -> usize {
        self.postings.len()
    }

    /// The collection context a full scan would compute over every
    /// *unshrunk* view — what the Section-4 uncertainty test scores against.
    /// `cf` is read off posting-list effective counts; `m` and `mcw` are
    /// catalog constants.
    pub fn unshrunk_context(&self, query: &[TermId]) -> CollectionContext {
        let cf = query
            .iter()
            .map(|w| self.postings.get(w).map_or(0, |l| l.effective_count))
            .collect();
        CollectionContext {
            m: self.len(),
            cf,
            mcw: self.mcw,
        }
    }

    /// The collection context over the per-database *chosen* views: for
    /// databases keeping `Ŝ(D)` the effective flag comes from the posting
    /// list; databases switched to `R̂(D)` are probed directly (a shrunk
    /// summary may effectively contain words its sample never saw).
    pub fn scoring_context(&self, query: &[TermId], used_shrinkage: &[bool]) -> CollectionContext {
        debug_assert_eq!(used_shrinkage.len(), self.len());
        let shrunk_dbs: Vec<usize> = (0..self.len()).filter(|&i| used_shrinkage[i]).collect();
        let cf = query
            .iter()
            .map(|w| {
                let mut count = 0u32;
                if let Some(list) = self.postings.get(w) {
                    if shrunk_dbs.is_empty() {
                        count += list.effective_count;
                    } else {
                        count += list
                            .entries
                            .iter()
                            .filter(|p| p.effective && !used_shrinkage[p.db as usize])
                            .count() as u32;
                    }
                }
                for &i in &shrunk_dbs {
                    count += u32::from(self.shrunk[i].effectively_contains(*w));
                }
                count
            })
            .collect();
        CollectionContext {
            m: self.len(),
            cf,
            mcw: self.mcw,
        }
    }

    /// Candidate mask: `true` for databases whose unshrunk summary mentions
    /// at least one query word. A database outside the mask that scores with
    /// its unshrunk summary provably lands exactly on its default score
    /// (every query word has `p̂ = 0`) and would be dropped by the ranker, so
    /// the engine skips scoring it. Databases scoring with shrunk summaries
    /// are never skipped — shrinkage gives every word non-zero probability.
    pub fn candidates(&self, query: &[TermId]) -> Vec<bool> {
        let mut mask = vec![false; self.len()];
        for w in query {
            if let Some(list) = self.postings.get(w) {
                for p in &list.entries {
                    mask[p.db as usize] = true;
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{entry, sampled_summary};

    fn catalog() -> Catalog {
        // db 0: words 1, 2; db 1: word 1 only; db 2: empty sample.
        Catalog::build(vec![
            entry("a", sampled_summary(1000.0, 100, &[(1, 50), (2, 3)])),
            entry("b", sampled_summary(500.0, 80, &[(1, 10)])),
            entry("c", sampled_summary(200.0, 50, &[])),
        ])
    }

    #[test]
    fn postings_are_per_term_and_db_ordered() {
        let c = catalog();
        let list = c.postings(1).unwrap();
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].db, 0);
        assert_eq!(list.entries[1].db, 1);
        assert_eq!(list.effective_count, 2);
        assert!(c.postings(99).is_none());
        assert_eq!(c.indexed_terms(), 2);
    }

    #[test]
    fn posting_statistics_match_the_summary() {
        let c = catalog();
        let p = &c.postings(2).unwrap().entries[0];
        assert_eq!(p.sample_df, 3);
        assert_eq!(p.p_df.to_bits(), c.unshrunk(0).p_df(2).to_bits());
        assert_eq!(p.effective, c.unshrunk(0).effectively_contains(2));
    }

    #[test]
    fn unshrunk_context_matches_full_scan() {
        let c = catalog();
        let query = [1u32, 2, 77];
        let views: Vec<&dyn SummaryView> = (0..c.len())
            .map(|i| c.unshrunk(i) as &dyn SummaryView)
            .collect();
        let scanned = CollectionContext::build(&query, &views);
        let indexed = c.unshrunk_context(&query);
        assert_eq!(indexed.m, scanned.m);
        assert_eq!(indexed.cf, scanned.cf);
        assert_eq!(indexed.mcw.to_bits(), scanned.mcw.to_bits());
    }

    #[test]
    fn candidates_require_a_query_word() {
        let c = catalog();
        assert_eq!(c.candidates(&[1]), vec![true, true, false]);
        assert_eq!(c.candidates(&[2]), vec![true, false, false]);
        assert_eq!(c.candidates(&[]), vec![false, false, false]);
        assert_eq!(c.candidates(&[99]), vec![false, false, false]);
    }

    #[test]
    fn gamma_falls_back_to_generic_exponent() {
        let mut s = sampled_summary(100.0, 10, &[(1, 5)]);
        s.set_gamma(-1.7);
        let c = Catalog::build(vec![
            entry("fitted", s),
            entry("unfitted", sampled_summary(100.0, 10, &[(1, 5)])),
        ]);
        assert_eq!(c.gamma(0), -1.7);
        assert_eq!(c.gamma(1), -2.0);
    }

    #[test]
    fn empty_catalog_is_consistent() {
        let c = Catalog::build(Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.mcw(), 0.0);
        let ctx = c.unshrunk_context(&[1]);
        assert_eq!(ctx.m, 0);
        assert_eq!(ctx.cf, vec![0]);
    }
}
