//! The frozen routing catalog, in columnar serving form.
//!
//! Profiling and shrinkage produce, per database, a sample-based summary
//! `Ŝ(D)`, a shrunk summary `R̂(D)`, and a fitted power-law exponent γ.
//! [`Catalog::build`] freezes those into an immutable, query-serving form:
//!
//! * every summary becomes a [`FrozenSummary`] — term-sorted parallel
//!   arrays answering `p̂(w|D)` by binary search over contiguous memory
//!   instead of hash-bucket chasing;
//! * the **summary-level inverted index** is stored CSR-style: one sorted
//!   term-id array, an offsets array, and flat parallel slabs holding, for
//!   every `(term, database)` pair whose unshrunk summary mentions the
//!   term, the database index, the `p̂(w|D)` estimate, the sample document
//!   frequency the uncertainty machinery needs, and the Section-5.3
//!   "effective containment" flag.
//!
//! Collection-level statistics that a per-query scan used to recompute —
//! `m`, `mcw`, and the effective `cf(w)` counts of Section 5.3 — become
//! catalog constants or single index lookups. The columnar form is also
//! exactly what the v2 snapshot serializes: `store::snapshot` dumps and
//! reloads these arrays verbatim, so a daemon start or `/admin/reload`
//! rebuilds nothing.
//!
//! Freezing is bit-preserving (see [`dbselect_core::frozen`]): rankings
//! over the columnar catalog equal rankings over the source summaries,
//! `f64::to_bits` for `f64::to_bits`.

use dbselect_core::frozen::FrozenSummary;
use dbselect_core::shrinkage::ShrunkSummary;
use dbselect_core::summary::{ContentSummary, SummaryView};
use selection::{CollectionContext, TermBound};
use textindex::TermId;

/// Everything [`Catalog::build`] needs per database.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Database name (for reports).
    pub name: String,
    /// The sample-based summary `Ŝ(D)`.
    pub unshrunk: ContentSummary,
    /// The shrinkage-based summary `R̂(D)`.
    pub shrunk: ShrunkSummary,
}

/// An in-place replacement of one database's catalog columns — what a
/// refresh round produces per re-probed database. Applied in a batch by
/// [`Catalog::apply_updates`].
#[derive(Debug, Clone)]
pub struct DbUpdate {
    /// Index of the database being replaced.
    pub db: usize,
    /// The re-resolved power-law exponent (Appendix-A fit or −2 fallback).
    pub gamma: f64,
    /// The re-probed sample summary `Ŝ(D)`, frozen.
    pub unshrunk: FrozenSummary,
    /// The re-fitted shrinkage summary `R̂(D)`, frozen.
    pub shrunk: FrozenSummary,
}

/// The CSR posting index over the unshrunk summaries: for every term, the
/// databases that mention it, in ascending database order, as slices of
/// flat parallel slabs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PostingIndex {
    /// Distinct indexed terms, strictly ascending.
    terms: Vec<TermId>,
    /// `offsets[i]..offsets[i + 1]` is `terms[i]`'s slice of every slab;
    /// `len() == terms.len() + 1`, first 0, last the slab length.
    offsets: Vec<u32>,
    /// Database index per posting.
    dbs: Vec<u32>,
    /// The unshrunk summary's `p̂(w|D)` per posting.
    p_df: Vec<f64>,
    /// Sample document frequency per posting (drives the word-posterior
    /// grid of Section 4).
    sample_df: Vec<u32>,
    /// Whether the database "effectively" contains the word under the
    /// Section-5.3 rounding rule `round(|D̂|·p̂(w|D)) ≥ 1`.
    effective: Vec<bool>,
    /// Number of `effective` postings per term — the unshrunk `cf(w)`.
    effective_counts: Vec<u32>,
    /// The unshrunk summary's token probability `p_tf(w|D)` per posting —
    /// LM's native probability space, gathered by the top-k kernels.
    p_tf: Vec<f64>,
    /// Per-term `max_D fl(p̂(w|D)·|D|)` — score-bound material (see
    /// [`selection::TermBound`]). Recomputable from the summaries
    /// ([`Self::recompute_aux`]), persisted by v3 snapshots.
    max_df: Vec<f64>,
    /// Per-term `max_D p̂(w|D)`.
    max_p_df: Vec<f64>,
    /// Per-term `max_D p_tf(w|D)`.
    max_p_tf: Vec<f64>,
}

/// One term's postings: parallel slices into the index slabs.
#[derive(Debug, Clone, Copy)]
pub struct Postings<'a> {
    /// Database indices, ascending.
    pub dbs: &'a [u32],
    /// `p̂(w|D)` per database.
    pub p_df: &'a [f64],
    /// Sample document frequency per database.
    pub sample_df: &'a [u32],
    /// Effective-containment flag per database.
    pub effective: &'a [bool],
    /// Number of effective entries — the unshrunk `cf(w)`.
    pub effective_count: u32,
    /// Token probability `p_tf(w|D)` per database (empty when the index's
    /// auxiliary columns have not been computed yet).
    pub p_tf: &'a [f64],
    /// The term's score-bound maxima.
    pub bound: TermBound,
}

impl PostingIndex {
    /// Build the index from frozen unshrunk summaries. Iterating databases
    /// in ascending order keeps every term's postings sorted by database
    /// index without an explicit sort. (`pub(crate)` so the shard planner
    /// can index its sub-catalogs.)
    pub(crate) fn build(unshrunk: &[FrozenSummary]) -> PostingIndex {
        let mut terms: Vec<TermId> = unshrunk.iter().flat_map(|s| s.terms()).copied().collect();
        terms.sort_unstable();
        terms.dedup();
        let mut counts = vec![0u32; terms.len()];
        for s in unshrunk {
            for t in s.terms() {
                counts[terms.binary_search(t).expect("term collected above")] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(terms.len() + 1);
        offsets.push(0u32);
        for &c in &counts {
            offsets.push(offsets.last().unwrap() + c);
        }
        let total = *offsets.last().unwrap() as usize;
        let mut cursors: Vec<u32> = offsets[..terms.len()].to_vec();
        let mut dbs = vec![0u32; total];
        let mut p_df = vec![0f64; total];
        let mut sample_df = vec![0u32; total];
        let mut effective = vec![false; total];
        let mut effective_counts = vec![0u32; terms.len()];
        for (db, s) in unshrunk.iter().enumerate() {
            for (i, t) in s.terms().iter().enumerate() {
                let pos = terms.binary_search(t).expect("term collected above");
                let at = cursors[pos] as usize;
                cursors[pos] += 1;
                dbs[at] = db as u32;
                p_df[at] = s.p_df_column()[i];
                sample_df[at] = s.sample_df_column()[i];
                let eff = s.effectively_contains(*t);
                effective[at] = eff;
                effective_counts[pos] += u32::from(eff);
            }
        }
        let mut index = PostingIndex {
            terms,
            offsets,
            dbs,
            p_df,
            sample_df,
            effective,
            effective_counts,
            p_tf: Vec::new(),
            max_df: Vec::new(),
            max_p_df: Vec::new(),
            max_p_tf: Vec::new(),
        };
        index.recompute_aux(unshrunk);
        index
    }

    /// Recompute the auxiliary columns (`p_tf` slab, per-term maxima) from
    /// the frozen unshrunk summaries. One deterministic code path serves
    /// both [`Self::build`] and the backward-load of snapshots that predate
    /// the columns, so recomputed values are bit-identical to persisted
    /// ones.
    pub(crate) fn recompute_aux(&mut self, unshrunk: &[FrozenSummary]) {
        let total = self.dbs.len();
        let mut p_tf = vec![0f64; total];
        let mut max_df = vec![0f64; self.terms.len()];
        let mut max_p_df = vec![0f64; self.terms.len()];
        let mut max_p_tf = vec![0f64; self.terms.len()];
        for (pos, w) in self.offsets.windows(2).enumerate() {
            let term = self.terms[pos];
            for at in w[0] as usize..w[1] as usize {
                let s = &unshrunk[self.dbs[at] as usize];
                let ptf = s.p_tf(term);
                let pdf = self.p_df[at];
                p_tf[at] = ptf;
                // The exact float product the CORI kernel forms per row, so
                // the maximum dominates every row's `df` bit-exactly.
                max_df[pos] = max_df[pos].max(pdf * s.db_size());
                max_p_df[pos] = max_p_df[pos].max(pdf);
                max_p_tf[pos] = max_p_tf[pos].max(ptf);
            }
        }
        self.p_tf = p_tf;
        self.max_df = max_df;
        self.max_p_df = max_p_df;
        self.max_p_tf = max_p_tf;
    }

    /// Whether the auxiliary columns are populated (always true after
    /// [`Self::build`]; false for a bare [`Self::from_raw_parts`] until
    /// [`Self::set_aux`] or [`Self::recompute_aux`] runs).
    pub fn aux_ready(&self) -> bool {
        self.p_tf.len() == self.dbs.len()
            && self.max_df.len() == self.terms.len()
            && self.max_p_df.len() == self.terms.len()
            && self.max_p_tf.len() == self.terms.len()
    }

    /// Install persisted auxiliary columns (the v3 snapshot load path),
    /// validating lengths against the core columns.
    pub fn set_aux(
        &mut self,
        p_tf: Vec<f64>,
        max_df: Vec<f64>,
        max_p_df: Vec<f64>,
        max_p_tf: Vec<f64>,
    ) -> Result<(), &'static str> {
        if p_tf.len() != self.dbs.len() {
            return Err("p_tf slab disagrees with postings");
        }
        if max_df.len() != self.terms.len()
            || max_p_df.len() != self.terms.len()
            || max_p_tf.len() != self.terms.len()
        {
            return Err("term maxima disagree with term count");
        }
        self.p_tf = p_tf;
        self.max_df = max_df;
        self.max_p_df = max_p_df;
        self.max_p_tf = max_p_tf;
        Ok(())
    }

    /// Reassemble an index from decoded columns — the snapshot load path.
    /// Validates every invariant binary search and slicing rely on, so
    /// corrupt input is rejected instead of causing panics or garbage
    /// lookups. `effective_counts` is recomputed rather than trusted. The
    /// auxiliary columns start empty; callers install them with
    /// [`Self::set_aux`] (v3 snapshots) or recompute them (older formats).
    pub fn from_raw_parts(
        n_dbs: usize,
        terms: Vec<TermId>,
        offsets: Vec<u32>,
        dbs: Vec<u32>,
        p_df: Vec<f64>,
        sample_df: Vec<u32>,
        effective: Vec<bool>,
    ) -> Result<PostingIndex, &'static str> {
        if terms.windows(2).any(|w| w[0] >= w[1]) {
            return Err("posting terms not strictly ascending");
        }
        if offsets.len() != terms.len() + 1 {
            return Err("posting offsets length mismatch");
        }
        if offsets.first() != Some(&0) {
            return Err("posting offsets must start at 0");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("posting offsets not monotone");
        }
        let total = *offsets.last().unwrap() as usize;
        if dbs.len() != total
            || p_df.len() != total
            || sample_df.len() != total
            || effective.len() != total
        {
            return Err("posting slabs disagree with offsets");
        }
        if dbs.iter().any(|&db| db as usize >= n_dbs) {
            return Err("posting database index out of range");
        }
        for w in offsets.windows(2) {
            let range = &dbs[w[0] as usize..w[1] as usize];
            if range.windows(2).any(|p| p[0] >= p[1]) {
                return Err("postings not strictly ascending by database");
            }
        }
        let mut effective_counts = vec![0u32; terms.len()];
        for (pos, w) in offsets.windows(2).enumerate() {
            effective_counts[pos] = effective[w[0] as usize..w[1] as usize]
                .iter()
                .map(|&e| u32::from(e))
                .sum();
        }
        Ok(PostingIndex {
            terms,
            offsets,
            dbs,
            p_df,
            sample_df,
            effective,
            effective_counts,
            p_tf: Vec::new(),
            max_df: Vec::new(),
            max_p_df: Vec::new(),
            max_p_tf: Vec::new(),
        })
    }

    /// Rebuild only the posting rows touched by replacing the summaries
    /// of `touched` databases (ascending, deduped; `old` holds their
    /// pre-update summaries, `unshrunk` is the full post-update array).
    ///
    /// A term's row can only change if a touched database mentioned the
    /// term before or mentions it now, so every other row — and its
    /// auxiliary maxima — is copied verbatim as a slab slice. Affected
    /// rows are re-merged in ascending database order and their maxima
    /// re-folded exactly as [`Self::recompute_aux`] folds them, which is
    /// what keeps the incremental result bit-identical to a full
    /// [`Self::build`] over the updated summaries.
    pub(crate) fn update_dbs(
        &self,
        touched: &[u32],
        old: &[&FrozenSummary],
        unshrunk: &[FrozenSummary],
    ) -> PostingIndex {
        debug_assert!(self.aux_ready());
        debug_assert_eq!(touched.len(), old.len());
        let mut is_touched = vec![false; unshrunk.len()];
        for &db in touched {
            is_touched[db as usize] = true;
        }

        // Terms whose rows may change: old ∪ new vocabulary of the
        // touched databases.
        let mut affected: Vec<TermId> = Vec::new();
        for s in old {
            affected.extend_from_slice(s.terms());
        }
        for &db in touched {
            affected.extend_from_slice(unshrunk[db as usize].terms());
        }
        affected.sort_unstable();
        affected.dedup();

        // Fresh postings per affected term, ascending by database because
        // `touched` is ascending.
        let mut contribs: std::collections::BTreeMap<TermId, Vec<(u32, f64, u32, bool)>> =
            std::collections::BTreeMap::new();
        for &db in touched {
            let s = &unshrunk[db as usize];
            for (i, &t) in s.terms().iter().enumerate() {
                contribs.entry(t).or_default().push((
                    db,
                    s.p_df_column()[i],
                    s.sample_df_column()[i],
                    s.effectively_contains(t),
                ));
            }
        }

        let mut terms = Vec::with_capacity(self.terms.len() + affected.len());
        let mut offsets = vec![0u32];
        let mut dbs = Vec::with_capacity(self.dbs.len());
        let mut p_df = Vec::with_capacity(self.p_df.len());
        let mut sample_df = Vec::with_capacity(self.sample_df.len());
        let mut effective = Vec::with_capacity(self.effective.len());
        let mut effective_counts = Vec::with_capacity(self.effective_counts.len());
        let mut p_tf = Vec::with_capacity(self.p_tf.len());
        let mut max_df = Vec::with_capacity(self.max_df.len());
        let mut max_p_df = Vec::with_capacity(self.max_p_df.len());
        let mut max_p_tf = Vec::with_capacity(self.max_p_tf.len());

        let (mut oi, mut ai) = (0usize, 0usize);
        loop {
            let next_old = self.terms.get(oi).copied();
            let next_aff = affected.get(ai).copied();
            let term = match (next_old, next_aff) {
                (None, None) => break,
                (Some(t), None) | (None, Some(t)) => t,
                (Some(a), Some(b)) => a.min(b),
            };
            let in_old = next_old == Some(term);
            let is_affected = next_aff == Some(term);
            if in_old && !is_affected {
                // Untouched row: verbatim slab copy, maxima included.
                let (lo, hi) = (self.offsets[oi] as usize, self.offsets[oi + 1] as usize);
                terms.push(term);
                dbs.extend_from_slice(&self.dbs[lo..hi]);
                p_df.extend_from_slice(&self.p_df[lo..hi]);
                sample_df.extend_from_slice(&self.sample_df[lo..hi]);
                effective.extend_from_slice(&self.effective[lo..hi]);
                p_tf.extend_from_slice(&self.p_tf[lo..hi]);
                effective_counts.push(self.effective_counts[oi]);
                max_df.push(self.max_df[oi]);
                max_p_df.push(self.max_p_df[oi]);
                max_p_tf.push(self.max_p_tf[oi]);
                offsets.push(dbs.len() as u32);
            } else {
                // Affected row: survivors (old postings of untouched
                // databases) merged with fresh postings, both ascending.
                let (lo, hi) = if in_old {
                    (self.offsets[oi] as usize, self.offsets[oi + 1] as usize)
                } else {
                    (0, 0)
                };
                let fresh: &[(u32, f64, u32, bool)] =
                    contribs.get(&term).map_or(&[], Vec::as_slice);
                let row_start = dbs.len();
                let mut si = lo;
                let mut fi = 0usize;
                loop {
                    while si < hi && is_touched[self.dbs[si] as usize] {
                        si += 1;
                    }
                    let s_db = (si < hi).then(|| self.dbs[si]);
                    let f_db = (fi < fresh.len()).then(|| fresh[fi].0);
                    match (s_db, f_db) {
                        (None, None) => break,
                        (Some(sd), fd) if fd.is_none_or(|fd| sd < fd) => {
                            dbs.push(self.dbs[si]);
                            p_df.push(self.p_df[si]);
                            sample_df.push(self.sample_df[si]);
                            effective.push(self.effective[si]);
                            p_tf.push(self.p_tf[si]);
                            si += 1;
                        }
                        _ => {
                            let (db, pd, sd, eff) = fresh[fi];
                            dbs.push(db);
                            p_df.push(pd);
                            sample_df.push(sd);
                            effective.push(eff);
                            p_tf.push(unshrunk[db as usize].p_tf(term));
                            fi += 1;
                        }
                    }
                }
                if dbs.len() > row_start {
                    terms.push(term);
                    let (mut ec, mut mdf, mut mpdf, mut mptf) = (0u32, 0f64, 0f64, 0f64);
                    // Same fold, same row order as `recompute_aux`.
                    for at in row_start..dbs.len() {
                        let s = &unshrunk[dbs[at] as usize];
                        ec += u32::from(effective[at]);
                        mdf = mdf.max(p_df[at] * s.db_size());
                        mpdf = mpdf.max(p_df[at]);
                        mptf = mptf.max(p_tf[at]);
                    }
                    effective_counts.push(ec);
                    max_df.push(mdf);
                    max_p_df.push(mpdf);
                    max_p_tf.push(mptf);
                    offsets.push(dbs.len() as u32);
                }
                // An emptied row drops its term entirely, matching a full
                // build (which only indexes terms some summary mentions).
            }
            oi += usize::from(in_old);
            ai += usize::from(is_affected);
        }
        PostingIndex {
            terms,
            offsets,
            dbs,
            p_df,
            sample_df,
            effective,
            effective_counts,
            p_tf,
            max_df,
            max_p_df,
            max_p_tf,
        }
    }

    /// The postings of `term`, if any database mentions it.
    pub fn get(&self, term: TermId) -> Option<Postings<'_>> {
        let pos = self.terms.binary_search(&term).ok()?;
        let (lo, hi) = (self.offsets[pos] as usize, self.offsets[pos + 1] as usize);
        Some(Postings {
            dbs: &self.dbs[lo..hi],
            p_df: &self.p_df[lo..hi],
            sample_df: &self.sample_df[lo..hi],
            effective: &self.effective[lo..hi],
            effective_count: self.effective_counts[pos],
            p_tf: self.p_tf.get(lo..hi).unwrap_or(&[]),
            bound: TermBound {
                max_df: self.max_df.get(pos).copied().unwrap_or(0.0),
                max_p_df: self.max_p_df.get(pos).copied().unwrap_or(0.0),
                max_p_tf: self.max_p_tf.get(pos).copied().unwrap_or(0.0),
            },
        })
    }

    /// Number of distinct indexed terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term is indexed.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The sorted term-id column.
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// The offsets column (`terms().len() + 1` entries).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The database-index slab.
    pub fn dbs(&self) -> &[u32] {
        &self.dbs
    }

    /// The `p̂(w|D)` slab.
    pub fn p_df(&self) -> &[f64] {
        &self.p_df
    }

    /// The sample-document-frequency slab.
    pub fn sample_df(&self) -> &[u32] {
        &self.sample_df
    }

    /// The effective-containment slab.
    pub fn effective(&self) -> &[bool] {
        &self.effective
    }

    /// The `p_tf(w|D)` slab (empty until the auxiliary columns exist).
    pub fn p_tf(&self) -> &[f64] {
        &self.p_tf
    }

    /// Per-term `max fl(p̂·|D|)` column (empty until the auxiliary columns
    /// exist).
    pub fn max_df(&self) -> &[f64] {
        &self.max_df
    }

    /// Per-term `max p̂(w|D)` column.
    pub fn max_p_df(&self) -> &[f64] {
        &self.max_p_df
    }

    /// Per-term `max p_tf(w|D)` column.
    pub fn max_p_tf(&self) -> &[f64] {
        &self.max_p_tf
    }
}

/// A profiled collection frozen for serving.
#[derive(Debug, Clone)]
pub struct Catalog {
    names: Vec<String>,
    unshrunk: Vec<FrozenSummary>,
    shrunk: Vec<FrozenSummary>,
    /// γ per database (the Appendix-A fit, or the generic −2 fallback),
    /// resolved once so the hot path never re-inspects the summary.
    gammas: Vec<f64>,
    /// Mean database word count over the whole collection. Constant across
    /// queries *and* summary choices: a shrunk summary inherits its
    /// database's word count, so `mcw` is invariant under the adaptive
    /// per-database choice.
    mcw: f64,
    /// Smallest unshrunk `cw(D)` — the CORI upper bound's denominator
    /// floor. Always recomputed (O(n), cheap), never persisted.
    min_word_count: f64,
    /// Whether every unshrunk summary reports `0.0` for absent terms —
    /// the invariant the kernels' zero-filled scatter matrix relies on.
    /// True for every summary `FrozenSummary::from_unshrunk` produces;
    /// checked so a hand-crafted snapshot cannot break bit-identity.
    kernel_safe: bool,
    index: PostingIndex,
}

impl Catalog {
    /// Freeze a profiled collection.
    pub fn build(entries: impl IntoIterator<Item = CatalogEntry>) -> Self {
        let mut names = Vec::new();
        let mut unshrunk = Vec::new();
        let mut shrunk = Vec::new();
        let mut gammas = Vec::new();
        for e in entries {
            names.push(e.name);
            gammas.push(e.unshrunk.gamma().unwrap_or(-2.0));
            unshrunk.push(FrozenSummary::from_unshrunk(&e.unshrunk));
            shrunk.push(FrozenSummary::from_shrunk(&e.shrunk));
        }
        // Same summation order as `CollectionContext::build` over views in
        // database order, so the constant is bit-identical to the scan.
        let mcw = if unshrunk.is_empty() {
            0.0
        } else {
            unshrunk.iter().map(|s| s.word_count()).sum::<f64>() / unshrunk.len() as f64
        };
        let index = PostingIndex::build(&unshrunk);
        let (min_word_count, kernel_safe) = Self::summary_stats(&unshrunk);
        Catalog {
            names,
            unshrunk,
            shrunk,
            gammas,
            mcw,
            min_word_count,
            kernel_safe,
            index,
        }
    }

    /// Apply a batch of per-database refresh updates, rebuilding **only**
    /// the touched columns: replaced summaries slot into the per-db
    /// arrays, the posting index re-merges only rows a touched database
    /// participates in ([`PostingIndex::update_dbs`]), and the catalog
    /// constants (`mcw`, `min_word_count`, `kernel_safe`) are re-folded
    /// with the exact summation [`Self::build`] uses. The result is
    /// bit-identical to a full `build` over the updated entries, at a
    /// cost proportional to the touched vocabulary instead of the
    /// catalog.
    pub fn apply_updates(&self, updates: &[DbUpdate]) -> Result<Catalog, &'static str> {
        if updates.iter().any(|u| u.db >= self.len()) {
            return Err("update database index out of range");
        }
        let mut order: Vec<usize> = (0..updates.len()).collect();
        order.sort_by_key(|&i| updates[i].db);
        if order.windows(2).any(|w| updates[w[0]].db == updates[w[1]].db) {
            return Err("duplicate database in update batch");
        }
        let names = self.names.clone();
        let mut unshrunk = self.unshrunk.clone();
        let mut shrunk = self.shrunk.clone();
        let mut gammas = self.gammas.clone();
        let touched: Vec<u32> = order.iter().map(|&i| updates[i].db as u32).collect();
        let old: Vec<&FrozenSummary> = order.iter().map(|&i| &self.unshrunk[updates[i].db]).collect();
        for u in updates {
            unshrunk[u.db] = u.unshrunk.clone();
            shrunk[u.db] = u.shrunk.clone();
            gammas[u.db] = u.gamma;
        }
        let index = self.index.update_dbs(&touched, &old, &unshrunk);
        // Same summation order as `build`, so the constant stays
        // bit-identical to a from-scratch freeze.
        let mcw = if unshrunk.is_empty() {
            0.0
        } else {
            unshrunk.iter().map(|s| s.word_count()).sum::<f64>() / unshrunk.len() as f64
        };
        let (min_word_count, kernel_safe) = Self::summary_stats(&unshrunk);
        Ok(Catalog {
            names,
            unshrunk,
            shrunk,
            gammas,
            mcw,
            min_word_count,
            kernel_safe,
            index,
        })
    }

    /// The recomputed-not-persisted per-catalog constants: the smallest
    /// unshrunk word count and the zero-default invariant check.
    fn summary_stats(unshrunk: &[FrozenSummary]) -> (f64, bool) {
        let min_word_count = unshrunk
            .iter()
            .map(|s| s.word_count())
            .fold(f64::INFINITY, f64::min);
        let min_word_count = if min_word_count.is_finite() {
            min_word_count
        } else {
            0.0
        };
        let kernel_safe = unshrunk
            .iter()
            .all(|s| s.default_p_df() == 0.0 && s.default_p_tf() == 0.0);
        (min_word_count, kernel_safe)
    }

    /// Reassemble a catalog from already-frozen columns — the snapshot
    /// load path. The caller (the v2 codec) has validated each summary and
    /// the posting index individually; this checks only cross-field
    /// consistency.
    pub fn from_raw_parts(
        names: Vec<String>,
        unshrunk: Vec<FrozenSummary>,
        shrunk: Vec<FrozenSummary>,
        gammas: Vec<f64>,
        mcw: f64,
        index: PostingIndex,
    ) -> Result<Catalog, &'static str> {
        if unshrunk.len() != names.len()
            || shrunk.len() != names.len()
            || gammas.len() != names.len()
        {
            return Err("catalog columns disagree on database count");
        }
        let mut index = index;
        if !index.aux_ready() {
            // Snapshots predating the auxiliary columns (v1/v2): derive
            // them from the summaries, bit-identical to freeze-time values.
            index.recompute_aux(&unshrunk);
        }
        let (min_word_count, kernel_safe) = Self::summary_stats(&unshrunk);
        Ok(Catalog {
            names,
            unshrunk,
            shrunk,
            gammas,
            mcw,
            min_word_count,
            kernel_safe,
            index,
        })
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.unshrunk.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.unshrunk.is_empty()
    }

    /// Database names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The frozen unshrunk summary `Ŝ(D)` of database `db`.
    pub fn unshrunk(&self, db: usize) -> &FrozenSummary {
        &self.unshrunk[db]
    }

    /// The frozen shrunk summary `R̂(D)` of database `db`.
    pub fn shrunk(&self, db: usize) -> &FrozenSummary {
        &self.shrunk[db]
    }

    /// The resolved power-law exponent γ of database `db`.
    pub fn gamma(&self, db: usize) -> f64 {
        self.gammas[db]
    }

    /// All resolved γ exponents, in database order.
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// Mean database word count (CORI's `mcw`), a catalog constant.
    pub fn mcw(&self) -> f64 {
        self.mcw
    }

    /// Smallest unshrunk word count `cw(D)` over the catalog (0 when
    /// empty) — floor for score-bound denominators.
    pub fn min_word_count(&self) -> f64 {
        self.min_word_count
    }

    /// Whether the pruned top-k kernels may serve this catalog: requires
    /// the auxiliary posting columns and the zero-default invariant the
    /// kernels' zero-filled gather relies on.
    pub fn kernel_ready(&self) -> bool {
        self.kernel_safe && self.index.aux_ready()
    }

    /// The score-bound maxima of `term` ([`TermBound::absent`] when no
    /// database mentions it).
    pub fn term_bound(&self, term: TermId) -> TermBound {
        self.index.get(term).map_or_else(TermBound::absent, |p| p.bound)
    }

    /// The CSR posting index.
    pub fn posting_index(&self) -> &PostingIndex {
        &self.index
    }

    /// The postings of `term`, if any database mentions it.
    pub fn postings(&self, term: TermId) -> Option<Postings<'_>> {
        self.index.get(term)
    }

    /// Number of distinct terms with postings.
    pub fn indexed_terms(&self) -> usize {
        self.index.len()
    }

    /// The collection context a full scan would compute over every
    /// *unshrunk* view — what the Section-4 uncertainty test scores against.
    /// `cf` is read off per-term effective counts; `m` and `mcw` are
    /// catalog constants.
    pub fn unshrunk_context(&self, query: &[TermId]) -> CollectionContext {
        let cf = query
            .iter()
            .map(|w| self.index.get(*w).map_or(0, |p| p.effective_count))
            .collect();
        CollectionContext {
            m: self.len(),
            cf,
            mcw: self.mcw,
        }
    }

    /// The collection context over the per-database *chosen* views: for
    /// databases keeping `Ŝ(D)` the effective flag comes from the posting
    /// index; databases switched to `R̂(D)` are probed directly (a shrunk
    /// summary may effectively contain words its sample never saw).
    ///
    /// When any database uses shrinkage, each query word costs one pass
    /// over its flat posting slices (subtracting the shrunk databases'
    /// effective entries from the precomputed count) plus one binary-search
    /// probe per shrunk database — all `u32` arithmetic, so the counts are
    /// exactly those of a from-scratch scan.
    pub fn scoring_context(&self, query: &[TermId], used_shrinkage: &[bool]) -> CollectionContext {
        debug_assert_eq!(used_shrinkage.len(), self.len());
        let any_shrunk = used_shrinkage.iter().any(|&u| u);
        let cf = query
            .iter()
            .map(|w| {
                let mut count = 0u32;
                if let Some(p) = self.index.get(*w) {
                    count = p.effective_count;
                    if any_shrunk {
                        for (&db, &eff) in p.dbs.iter().zip(p.effective) {
                            if eff && used_shrinkage[db as usize] {
                                count -= 1;
                            }
                        }
                    }
                }
                if any_shrunk {
                    for (i, &used) in used_shrinkage.iter().enumerate() {
                        if used {
                            count += u32::from(self.shrunk[i].effectively_contains(*w));
                        }
                    }
                }
                count
            })
            .collect();
        CollectionContext {
            m: self.len(),
            cf,
            mcw: self.mcw,
        }
    }

    /// Candidate mask: `true` for databases whose unshrunk summary mentions
    /// at least one query word. A database outside the mask that scores with
    /// its unshrunk summary provably lands exactly on its default score
    /// (every query word has `p̂ = 0`) and would be dropped by the ranker, so
    /// the engine skips scoring it. Databases scoring with shrunk summaries
    /// are never skipped — shrinkage gives every word non-zero probability.
    pub fn candidates(&self, query: &[TermId]) -> Vec<bool> {
        let mut mask = Vec::new();
        self.candidates_into(query, &mut mask);
        mask
    }

    /// [`Self::candidates`] into a reusable buffer (cleared and refilled),
    /// so batch routing allocates the mask once per worker, not per query.
    pub fn candidates_into(&self, query: &[TermId], mask: &mut Vec<bool>) {
        mask.clear();
        mask.resize(self.len(), false);
        for w in query {
            if let Some(p) = self.index.get(*w) {
                for &db in p.dbs {
                    mask[db as usize] = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{entry, sampled_summary};

    fn catalog() -> Catalog {
        // db 0: words 1, 2; db 1: word 1 only; db 2: empty sample.
        Catalog::build(vec![
            entry("a", sampled_summary(1000.0, 100, &[(1, 50), (2, 3)])),
            entry("b", sampled_summary(500.0, 80, &[(1, 10)])),
            entry("c", sampled_summary(200.0, 50, &[])),
        ])
    }

    #[test]
    fn postings_are_per_term_and_db_ordered() {
        let c = catalog();
        let p = c.postings(1).unwrap();
        assert_eq!(p.dbs, &[0, 1]);
        assert_eq!(p.effective_count, 2);
        assert!(c.postings(99).is_none());
        assert_eq!(c.indexed_terms(), 2);
        let index = c.posting_index();
        assert_eq!(index.terms(), &[1, 2]);
        assert_eq!(index.offsets(), &[0, 2, 3]);
    }

    #[test]
    fn posting_statistics_match_the_summary() {
        let c = catalog();
        let p = c.postings(2).unwrap();
        assert_eq!(p.sample_df[0], 3);
        assert_eq!(p.p_df[0].to_bits(), c.unshrunk(0).p_df(2).to_bits());
        assert_eq!(p.effective[0], c.unshrunk(0).effectively_contains(2));
    }

    #[test]
    fn unshrunk_context_matches_full_scan() {
        let c = catalog();
        let query = [1u32, 2, 77];
        let views: Vec<&dyn SummaryView> = (0..c.len())
            .map(|i| c.unshrunk(i) as &dyn SummaryView)
            .collect();
        let scanned = CollectionContext::build(&query, &views);
        let indexed = c.unshrunk_context(&query);
        assert_eq!(indexed.m, scanned.m);
        assert_eq!(indexed.cf, scanned.cf);
        assert_eq!(indexed.mcw.to_bits(), scanned.mcw.to_bits());
    }

    #[test]
    fn scoring_context_matches_per_entry_rescan() {
        let c = catalog();
        let query = [1u32, 2, 77];
        for used in [
            vec![false, false, false],
            vec![true, false, false],
            vec![false, true, true],
            vec![true, true, true],
        ] {
            let got = c.scoring_context(&query, &used);
            // Reference: count per word from scratch over the chosen views.
            let want: Vec<u32> = query
                .iter()
                .map(|&w| {
                    (0..c.len())
                        .filter(|&i| {
                            if used[i] {
                                c.shrunk(i).effectively_contains(w)
                            } else {
                                c.unshrunk(i).effectively_contains(w)
                            }
                        })
                        .count() as u32
                })
                .collect();
            assert_eq!(got.cf, want, "used_shrinkage={used:?}");
        }
    }

    #[test]
    fn candidates_require_a_query_word() {
        let c = catalog();
        assert_eq!(c.candidates(&[1]), vec![true, true, false]);
        assert_eq!(c.candidates(&[2]), vec![true, false, false]);
        assert_eq!(c.candidates(&[]), vec![false, false, false]);
        assert_eq!(c.candidates(&[99]), vec![false, false, false]);
        let mut mask = vec![true; 7];
        c.candidates_into(&[1], &mut mask);
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn gamma_falls_back_to_generic_exponent() {
        let mut s = sampled_summary(100.0, 10, &[(1, 5)]);
        s.set_gamma(-1.7);
        let c = Catalog::build(vec![
            entry("fitted", s),
            entry("unfitted", sampled_summary(100.0, 10, &[(1, 5)])),
        ]);
        assert_eq!(c.gamma(0), -1.7);
        assert_eq!(c.gamma(1), -2.0);
        assert_eq!(c.gammas(), &[-1.7, -2.0]);
    }

    #[test]
    fn empty_catalog_is_consistent() {
        let c = Catalog::build(Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.mcw(), 0.0);
        let ctx = c.unshrunk_context(&[1]);
        assert_eq!(ctx.m, 0);
        assert_eq!(ctx.cf, vec![0]);
        assert!(c.posting_index().is_empty());
    }

    #[test]
    fn raw_parts_round_trip_reproduces_the_index() {
        let c = catalog();
        let index = c.posting_index();
        let mut rebuilt = PostingIndex::from_raw_parts(
            c.len(),
            index.terms().to_vec(),
            index.offsets().to_vec(),
            index.dbs().to_vec(),
            index.p_df().to_vec(),
            index.sample_df().to_vec(),
            index.effective().to_vec(),
        )
        .unwrap();
        // Raw parts carry no aux columns; recomputing them from the same
        // summaries must land on bit-identical slabs (the invariant that
        // lets older snapshots rebuild bounds at load time).
        assert!(!rebuilt.aux_ready());
        let summaries: Vec<_> = (0..c.len()).map(|db| c.unshrunk(db).clone()).collect();
        rebuilt.recompute_aux(&summaries);
        assert_eq!(&rebuilt, index);
    }

    #[test]
    fn raw_parts_reject_structural_corruption() {
        let c = catalog();
        let i = c.posting_index();
        type Mutator<'a> = &'a dyn Fn(&mut Vec<TermId>, &mut Vec<u32>, &mut Vec<u32>);
        let parts = |f: Mutator| {
            let mut terms = i.terms().to_vec();
            let mut offsets = i.offsets().to_vec();
            let mut dbs = i.dbs().to_vec();
            f(&mut terms, &mut offsets, &mut dbs);
            PostingIndex::from_raw_parts(
                c.len(),
                terms,
                offsets,
                dbs,
                i.p_df().to_vec(),
                i.sample_df().to_vec(),
                i.effective().to_vec(),
            )
        };
        assert!(parts(&|_, _, _| {}).is_ok());
        assert!(
            parts(&|terms, _, _| terms.reverse()).is_err(),
            "unsorted terms"
        );
        assert!(
            parts(&|_, offsets, _| offsets[1] = 9).is_err(),
            "bad offsets"
        );
        assert!(parts(&|_, offsets, _| {
            offsets.pop();
        })
        .is_err());
        assert!(parts(&|_, _, dbs| dbs[0] = 99).is_err(), "db out of range");
        assert!(parts(&|_, _, dbs| dbs.swap(0, 1)).is_err(), "unsorted dbs");
    }

    #[test]
    fn aux_columns_mirror_the_summaries() {
        let c = catalog();
        let index = c.posting_index();
        assert!(index.aux_ready());
        assert!(c.kernel_ready());
        assert_eq!(index.p_tf().len(), index.dbs().len());
        assert_eq!(index.max_df().len(), index.terms().len());
        for (pos, &term) in index.terms().iter().enumerate() {
            let p = c.postings(term).unwrap();
            assert_eq!(p.p_tf.len(), p.dbs.len());
            for (j, &db) in p.dbs.iter().enumerate() {
                let s = c.unshrunk(db as usize);
                // The slab stores the exact per-summary probabilities...
                assert_eq!(p.p_tf[j].to_bits(), s.p_tf(term).to_bits());
                // ...and the maxima dominate every posting, with max_df
                // holding the exact float product the CORI kernel forms.
                assert!(p.bound.max_p_df >= p.p_df[j]);
                assert!(p.bound.max_p_tf >= p.p_tf[j]);
                assert!(p.bound.max_df >= p.p_df[j] * s.db_size());
            }
            assert_eq!(index.max_df()[pos].to_bits(), p.bound.max_df.to_bits());
        }
        // Terms outside the index get the absent bound.
        assert_eq!(c.term_bound(99), TermBound::absent());
    }

    #[test]
    fn set_aux_validates_column_lengths() {
        let c = catalog();
        let i = c.posting_index();
        let postings = i.dbs().len();
        let terms = i.terms().len();
        let mut rebuilt = PostingIndex::from_raw_parts(
            c.len(),
            i.terms().to_vec(),
            i.offsets().to_vec(),
            i.dbs().to_vec(),
            i.p_df().to_vec(),
            i.sample_df().to_vec(),
            i.effective().to_vec(),
        )
        .unwrap();
        assert!(rebuilt
            .set_aux(
                vec![0.0; postings + 1],
                vec![0.0; terms],
                vec![0.0; terms],
                vec![0.0; terms],
            )
            .is_err());
        assert!(rebuilt
            .set_aux(
                vec![0.0; postings],
                vec![0.0; terms - 1],
                vec![0.0; terms],
                vec![0.0; terms],
            )
            .is_err());
        assert!(!rebuilt.aux_ready(), "failed set_aux must not half-install");
        rebuilt
            .set_aux(
                i.p_tf().to_vec(),
                i.max_df().to_vec(),
                i.max_p_df().to_vec(),
                i.max_p_tf().to_vec(),
            )
            .unwrap();
        assert_eq!(&rebuilt, i, "installing the freeze-time aux restores equality");
    }

    fn update_from(db: usize, e: &CatalogEntry) -> DbUpdate {
        DbUpdate {
            db,
            gamma: e.unshrunk.gamma().unwrap_or(-2.0),
            unshrunk: FrozenSummary::from_unshrunk(&e.unshrunk),
            shrunk: FrozenSummary::from_shrunk(&e.shrunk),
        }
    }

    fn assert_catalogs_identical(a: &Catalog, b: &Catalog) {
        assert_eq!(a.names(), b.names());
        assert_eq!(a.mcw().to_bits(), b.mcw().to_bits());
        assert_eq!(a.min_word_count().to_bits(), b.min_word_count().to_bits());
        assert_eq!(a.kernel_ready(), b.kernel_ready());
        for db in 0..a.len() {
            assert_eq!(a.gamma(db).to_bits(), b.gamma(db).to_bits(), "gamma {db}");
            assert_eq!(a.unshrunk(db), b.unshrunk(db), "unshrunk {db}");
            assert_eq!(a.shrunk(db), b.shrunk(db), "shrunk {db}");
        }
        assert_eq!(a.posting_index(), b.posting_index());
    }

    #[test]
    fn apply_updates_is_bit_identical_to_full_rebuild() {
        let base = vec![
            entry("a", sampled_summary(1000.0, 100, &[(1, 50), (2, 3)])),
            entry("b", sampled_summary(500.0, 80, &[(1, 10)])),
            entry("c", sampled_summary(200.0, 50, &[])),
        ];
        let catalog = Catalog::build(base.clone());
        // b gains a brand-new term (9) and drops term 1; c's empty sample
        // fills in; a is untouched. Together these exercise term
        // insertion, row shrink, and whole-term removal (term 1 keeps
        // only a's posting).
        let mut refreshed_b = sampled_summary(640.0, 90, &[(2, 7), (9, 4)]);
        refreshed_b.set_gamma(-1.8);
        let updates = vec![
            update_from(1, &entry("b", refreshed_b.clone())),
            update_from(2, &entry("c", sampled_summary(250.0, 60, &[(1, 2), (7, 9)]))),
        ];
        let incremental = catalog.apply_updates(&updates).unwrap();
        let mut rebuilt_entries = base.clone();
        rebuilt_entries[1] = entry("b", refreshed_b);
        rebuilt_entries[2] = entry("c", sampled_summary(250.0, 60, &[(1, 2), (7, 9)]));
        let full = Catalog::build(rebuilt_entries);
        assert_catalogs_identical(&incremental, &full);
    }

    #[test]
    fn apply_updates_drops_terms_nobody_mentions_anymore() {
        let base = vec![
            entry("a", sampled_summary(1000.0, 100, &[(1, 50), (2, 3)])),
            entry("b", sampled_summary(500.0, 80, &[(1, 10)])),
        ];
        let catalog = Catalog::build(base.clone());
        // a empties out: term 2 loses its only posting and must vanish
        // from the index, exactly as a full rebuild would drop it.
        let updates = vec![update_from(0, &entry("a", sampled_summary(900.0, 70, &[])))];
        let incremental = catalog.apply_updates(&updates).unwrap();
        let mut rebuilt = base;
        rebuilt[0] = entry("a", sampled_summary(900.0, 70, &[]));
        assert_catalogs_identical(&incremental, &Catalog::build(rebuilt));
        assert!(incremental.postings(2).is_none());
    }

    #[test]
    fn apply_updates_rejects_bad_batches() {
        let catalog = Catalog::build(vec![
            entry("a", sampled_summary(1000.0, 100, &[(1, 50)])),
            entry("b", sampled_summary(500.0, 80, &[(1, 10)])),
        ]);
        let good = update_from(0, &entry("a", sampled_summary(100.0, 10, &[(1, 5)])));
        let mut oob = good.clone();
        oob.db = 7;
        assert!(catalog.apply_updates(&[oob]).is_err());
        assert!(catalog.apply_updates(&[good.clone(), good]).is_err());
        assert!(catalog.apply_updates(&[]).is_ok(), "empty batch is a no-op");
    }

    proptest::proptest! {
        /// Randomized equivalence: patching any subset of databases with
        /// arbitrary replacement summaries lands on the same catalog —
        /// bit for bit, aux maxima included — as freezing the updated
        /// entries from scratch.
        #[test]
        fn random_update_batches_match_full_rebuild(
            base in proptest::collection::vec(
                (10.0f64..5_000.0, 5u32..100,
                 proptest::collection::vec((0u32..8, 1u32..40), 0..6)),
                1..6),
            patch in proptest::collection::vec(
                (10.0f64..5_000.0, 5u32..100,
                 proptest::collection::vec((0u32..8, 1u32..40), 0..6)),
                1..6),
            mask in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 6),
        ) {
            let summary = |&(size, n, ref words): &(f64, u32, Vec<(u32, u32)>)| {
                let mut dedup: Vec<(u32, u32)> = Vec::new();
                for &(t, df) in words {
                    if !dedup.iter().any(|&(seen, _)| seen == t) {
                        dedup.push((t, df.min(n)));
                    }
                }
                sampled_summary(size, n, &dedup)
            };
            let entries: Vec<CatalogEntry> = base
                .iter()
                .enumerate()
                .map(|(i, spec)| entry(&format!("db{i}"), summary(spec)))
                .collect();
            let catalog = Catalog::build(entries.clone());
            let mut updates = Vec::new();
            let mut rebuilt = entries;
            for (db, spec) in patch.iter().enumerate().take(rebuilt.len()) {
                if mask[db] {
                    let e = entry(&format!("db{db}"), summary(spec));
                    updates.push(update_from(db, &e));
                    rebuilt[db] = e;
                }
            }
            let incremental = catalog.apply_updates(&updates).unwrap();
            assert_catalogs_identical(&incremental, &Catalog::build(rebuilt));
        }
    }

    #[test]
    fn catalog_raw_parts_recompute_missing_aux() {
        let c = catalog();
        let index = PostingIndex::from_raw_parts(
            c.len(),
            c.posting_index().terms().to_vec(),
            c.posting_index().offsets().to_vec(),
            c.posting_index().dbs().to_vec(),
            c.posting_index().p_df().to_vec(),
            c.posting_index().sample_df().to_vec(),
            c.posting_index().effective().to_vec(),
        )
        .unwrap();
        let rebuilt = Catalog::from_raw_parts(
            c.names().to_vec(),
            (0..c.len()).map(|db| c.unshrunk(db).clone()).collect(),
            (0..c.len()).map(|db| c.shrunk(db).clone()).collect(),
            c.gammas().to_vec(),
            c.mcw(),
            index,
        )
        .unwrap();
        assert!(rebuilt.kernel_ready());
        assert_eq!(rebuilt.posting_index(), c.posting_index());
        assert_eq!(rebuilt.min_word_count(), c.min_word_count());
    }
}
