//! Shared constructors for broker unit tests.

use std::collections::HashMap;
use std::sync::Arc;

use dbselect_core::category_summary::SummaryComponent;
use dbselect_core::shrinkage::{shrink, ShrinkageConfig, ShrunkSummary};
use dbselect_core::summary::{ContentSummary, WordStats};
use textindex::TermId;

use crate::catalog::CatalogEntry;

/// A sample-based summary with explicit per-word sample document
/// frequencies; `df` is the usual sample-scaled estimate.
pub fn sampled_summary(db_size: f64, sample_size: u32, words: &[(TermId, u32)]) -> ContentSummary {
    let words: HashMap<TermId, WordStats> = words
        .iter()
        .map(|&(t, sample_df)| {
            let df = f64::from(sample_df) / f64::from(sample_size.max(1)) * db_size;
            (
                t,
                WordStats {
                    sample_df,
                    df,
                    tf: df * 2.0,
                },
            )
        })
        .collect();
    ContentSummary::new(db_size, sample_size, words)
}

/// Shrink `summary` against a single synthetic category component.
pub fn shrunk_for(summary: &ContentSummary, component: &[(TermId, f64)]) -> ShrunkSummary {
    let comp = SummaryComponent {
        p_df: component.iter().copied().collect(),
        p_tf: component.iter().copied().collect(),
    };
    shrink(summary, &[Arc::new(comp)], &ShrinkageConfig::default())
}

/// A catalog entry whose shrunk summary mixes in a fixed category model
/// covering words 1, 2 and 7.
pub fn entry(name: &str, unshrunk: ContentSummary) -> CatalogEntry {
    let shrunk = shrunk_for(&unshrunk, &[(1, 0.05), (2, 0.02), (7, 0.01)]);
    CatalogEntry {
        name: name.to_string(),
        unshrunk,
        shrunk,
    }
}
