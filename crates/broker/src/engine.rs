//! The batched selection engine.
//!
//! [`SelectionEngine`] serves queries against a frozen [`Catalog`] with any
//! [`SelectionAlgorithm`] under any [`ShrinkageMode`], reproducing
//! [`selection::adaptive_rank`] bit for bit while doing strictly less work
//! per query:
//!
//! * collection statistics (`m`, `mcw`, `cf`) come from the catalog instead
//!   of per-query scans over every summary map;
//! * word-posterior grids — which depend only on `(sample_df, |S|, |D̂|, γ)`,
//!   never on the query — are memoized per (database, term) and shared
//!   across queries and threads;
//! * databases whose unshrunk summary mentions no query word are skipped in
//!   the scoring phase: their score provably equals the algorithm's default
//!   score, which the ranker drops. (Databases routed to their shrunk
//!   summary are always scored, and in `Adaptive` mode the uncertainty test
//!   still runs for *every* database in order, so the Monte-Carlo RNG stream
//!   is exactly the one the unbatched path consumes.)
//!
//! The engine owns its catalog and algorithm behind `Arc`s, so a long-lived
//! serving process (the `dbselectd` daemon) can share one engine across
//! worker threads and atomically swap catalogs by replacing the engine.
//!
//! The posterior cache is lock-striped and *bounded*: each stripe holds at
//! most `capacity / stripes` grids and evicts in insertion (FIFO) order.
//! Eviction only costs a rebuild on the next lookup — grid construction is
//! deterministic, so a re-built grid is bit-identical to the evicted one
//! and rankings never depend on cache hits, misses, or evictions.
//!
//! Batches fan out over queries in contiguous per-worker chunks
//! ([`sampling::scheduler::fan_out_chunks`]); each query's RNG is derived
//! from `(base_seed, query_index)` via [`sampling::scheduler::db_rng`], so
//! results are invariant to the thread count.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dbselect_core::summary::SummaryView;
use dbselect_core::uncertainty::WordPosterior;
use rand::Rng;
use sampling::scheduler::{db_rng, fan_out_chunks_with};
use selection::{
    rank_databases_with_context, score_is_uncertain_with_posteriors, AdaptiveConfig,
    AdaptiveOutcome, CollectionContext, IndexedView, ProbabilitySpace, RankedDatabase,
    SelectionAlgorithm, ShrinkageMode, TermBound, TopK,
};
use textindex::TermId;

use crate::catalog::Catalog;

/// Lock-striping width of the posterior cache.
const CACHE_SHARDS: usize = 16;

/// Default total posterior-cache capacity (entries across all stripes).
pub const DEFAULT_CACHE_CAPACITY: usize = 65_536;

/// One lock stripe of the posterior cache: the grid map plus the key
/// insertion order that drives FIFO eviction.
#[derive(Default)]
struct Shard {
    map: HashMap<(u32, TermId), Arc<WordPosterior>>,
    order: VecDeque<(u32, TermId)>,
}

/// Posterior-cache counters (for diagnostics, benchmarks, and the
/// `dbselectd` metrics endpoint).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Grid lookups served from the cache.
    pub hits: u64,
    /// Grid lookups that had to build a new posterior.
    pub misses: u64,
    /// Grids dropped to keep a stripe within its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Element-wise sum (for aggregating across engines).
    pub fn merged(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// Reusable per-worker buffers for [`SelectionEngine::route_with_scratch`].
///
/// Routing a query needs a candidate mask and, in `Adaptive` mode, a
/// per-word posterior list per database; allocating those fresh per query
/// dominates the allocator traffic of a batch. A scratch never influences
/// results — every buffer is cleared and refilled before use — it only
/// recycles capacity.
#[derive(Default)]
pub struct RouteScratch {
    candidates: Vec<bool>,
    posteriors: Vec<Arc<WordPosterior>>,
    // Buffers of the pruned top-k path (`score_partition_topk`): the
    // db→row map, per-row metadata, the row-major probability matrix,
    // presence masks, and the compacted survivor rows.
    row_of: Vec<u32>,
    row_dbs: Vec<u32>,
    row_sizes: Vec<f64>,
    row_wcs: Vec<f64>,
    matrix: Vec<f64>,
    masks: Vec<u64>,
    survivors: Vec<u32>,
    compact: Vec<f64>,
    compact_sizes: Vec<f64>,
    compact_wcs: Vec<f64>,
    scores: Vec<f64>,
}

/// A query-serving engine over a frozen catalog.
pub struct SelectionEngine {
    catalog: Arc<Catalog>,
    algorithm: Arc<dyn SelectionAlgorithm + Send + Sync>,
    config: AdaptiveConfig,
    shards: Vec<Mutex<Shard>>,
    /// Per-stripe entry cap (`usize::MAX` = unbounded).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SelectionEngine {
    /// Build an engine for `algorithm` under `config` over `catalog`.
    ///
    /// `cache_capacity` bounds the posterior cache (total entries across
    /// all stripes; `0` means unbounded). Bounding never changes rankings —
    /// an evicted grid is rebuilt bit-identically on the next lookup.
    pub fn new(
        catalog: Arc<Catalog>,
        algorithm: Arc<dyn SelectionAlgorithm + Send + Sync>,
        config: AdaptiveConfig,
        cache_capacity: usize,
    ) -> Self {
        let shard_capacity = if cache_capacity == 0 {
            usize::MAX
        } else {
            cache_capacity.div_ceil(CACHE_SHARDS).max(1)
        };
        SelectionEngine {
            catalog,
            algorithm,
            config,
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The catalog this engine serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine's selection algorithm (shared; shard scorers built from
    /// this engine score with the *same* `Arc`, so float behavior cannot
    /// drift between the monolithic and sharded paths).
    pub fn algorithm(&self) -> Arc<dyn SelectionAlgorithm + Send + Sync> {
        Arc::clone(&self.algorithm)
    }

    /// The engine's adaptive-selection configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Posterior-cache counters since construction (or the last
    /// [`clear_cache`](Self::clear_cache)).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop all memoized posteriors and reset the counters.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock().expect("posterior cache poisoned");
            guard.map.clear();
            guard.order.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// The memoized word posterior of `(db, term)`. Grid construction is
    /// deterministic, so a cached grid is bit-identical to a fresh one and
    /// concurrent builders of the same key agree on the value.
    fn posterior(&self, db: u32, term: TermId) -> Arc<WordPosterior> {
        let key = (db, term);
        let shard = &self.shards[(db as usize ^ term as usize) % CACHE_SHARDS];
        if let Some(p) = shard
            .lock()
            .expect("posterior cache poisoned")
            .map
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let summary = self.catalog.unshrunk(db as usize);
        let posterior = Arc::new(WordPosterior::new(
            summary.sample_df(term),
            summary.sample_size(),
            summary.db_size(),
            self.catalog.gamma(db as usize),
            self.config.uncertainty.grid_points,
        ));
        let mut guard = shard.lock().expect("posterior cache poisoned");
        if guard.map.contains_key(&key) {
            // A concurrent builder inserted the same (deterministic) grid.
            return Arc::clone(&guard.map[&key]);
        }
        while guard.map.len() >= self.shard_capacity {
            let oldest = guard.order.pop_front().expect("order tracks map");
            guard.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        guard.order.push_back(key);
        guard.map.insert(key, Arc::clone(&posterior));
        posterior
    }

    /// Rank databases for one query. Bit-identical to
    /// [`selection::adaptive_rank`] over the catalog's summary pairs with
    /// the same `rng`.
    pub fn route<R: Rng + ?Sized>(&self, query: &[TermId], rng: &mut R) -> AdaptiveOutcome {
        self.route_with_scratch(query, rng, &mut RouteScratch::default())
    }

    /// [`route`](Self::route) with caller-provided scratch buffers, so a
    /// worker routing many queries reuses allocations instead of paying
    /// them per query. Results are identical for any scratch history.
    pub fn route_with_scratch<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.choose_summaries(query, rng, scratch);
        let ctx = self.catalog.scoring_context(query, &used_shrinkage);
        let ranking = self.score_partition(query, &ctx, &used_shrinkage, None, scratch);
        AdaptiveOutcome {
            ranking,
            used_shrinkage,
        }
    }

    /// The Content Summary Selection phase alone: decide, per database,
    /// whether scoring uses the shrunk summary. In `Adaptive` mode every
    /// database is tested *in catalog order against one shared `rng`* — the
    /// Monte-Carlo stream is inherently sequential, which is why the shard
    /// scatter-gather ([`crate::shard::ShardedEngine`]) runs this phase on
    /// the full catalog and only scatters the scoring phase.
    pub fn choose_summaries<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> Vec<bool> {
        let n = self.catalog.len();

        // (`used_shrinkage` is handed to the caller inside the outcome, so
        // it is the one per-query allocation that cannot come from scratch.)
        match self.config.mode {
            ShrinkageMode::Always => vec![true; n],
            ShrinkageMode::Never => vec![false; n],
            ShrinkageMode::Adaptive if query.is_empty() => vec![false; n],
            ShrinkageMode::Adaptive => {
                let ctx = self.catalog.unshrunk_context(query);
                // Every database is tested, in order, sharing `rng`: the
                // Monte-Carlo draws must follow the exact stream of the
                // unbatched path. The saving here is the posterior cache,
                // not candidate pruning.
                (0..n)
                    .map(|db| {
                        scratch.posteriors.clear();
                        scratch
                            .posteriors
                            .extend(query.iter().map(|&w| self.posterior(db as u32, w)));
                        score_is_uncertain_with_posteriors(
                            self.algorithm.as_ref(),
                            query,
                            self.catalog.unshrunk(db),
                            &scratch.posteriors,
                            &ctx,
                            &self.config,
                            rng,
                        )
                    })
                    .collect()
            }
        }
    }

    /// The Scoring + Ranking phase alone, over posting-list candidates,
    /// against a caller-supplied collection context.
    ///
    /// `ctx` must be the context of the collection the ranking is *about* —
    /// for monolithic routing that is this engine's own
    /// [`Catalog::scoring_context`]; for a shard scorer it is the context of
    /// the **full** catalog, because scores depend on `(m, cf, mcw)` and
    /// shard-local statistics would change every float. `used_shrinkage` is
    /// indexed by this engine's local database order; `global_indices`, when
    /// given, maps each local database to the index reported in the ranking
    /// (a shard reporting positions in the unsharded catalog). Per-database
    /// scores are pure functions of `(algorithm, query, view, ctx)`, so a
    /// partition scored here and merged by
    /// [`selection::merge::merge_rankings`] is bit-identical to the
    /// monolithic ranking.
    pub fn score_partition(
        &self,
        query: &[TermId],
        ctx: &CollectionContext,
        used_shrinkage: &[bool],
        global_indices: Option<&[u32]>,
        scratch: &mut RouteScratch,
    ) -> Vec<RankedDatabase> {
        let n = self.catalog.len();
        debug_assert_eq!(used_shrinkage.len(), n);
        self.catalog.candidates_into(query, &mut scratch.candidates);
        let candidates = &scratch.candidates;
        let items = (0..n).filter_map(|db| {
            let index = global_indices.map_or(db, |g| g[db] as usize);
            if used_shrinkage[db] {
                Some(IndexedView {
                    index,
                    view: self.catalog.shrunk(db) as &dyn SummaryView,
                })
            } else if candidates[db] {
                Some(IndexedView {
                    index,
                    view: self.catalog.unshrunk(db) as &dyn SummaryView,
                })
            } else {
                None
            }
        });
        rank_databases_with_context(self.algorithm.as_ref(), query, items, ctx)
    }

    /// Rank only the top `k` databases for one query. **Bit-identical**
    /// (`f64::to_bits`) to truncating [`route`](Self::route)'s full ranking
    /// to its first `k` entries, for every algorithm, shrinkage mode, seed,
    /// and `k` — the non-negotiable guardrail of the pruned path.
    ///
    /// When the algorithm exposes a [`selection::ScoreKernel`], scoring
    /// runs through the batch kernels with maxscore-style early
    /// termination: a bounded heap tracks the best `k` scores seen, and any
    /// database whose per-term score upper bound falls strictly below the
    /// heap's worst kept score is skipped without being scored. Skipping is
    /// provably invisible: bounds dominate realized scores, and a database
    /// strictly below the k-th score can never enter the top k.
    ///
    /// `Adaptive` mode is *never* pruned out of its Monte-Carlo stream: the
    /// summary-choice phase runs unchanged (same RNG draws as the full
    /// path); only the deterministic scoring phase prunes, and databases
    /// routed to their shrunk summary are batch-scored without pruning
    /// (shrinkage gives every word non-zero probability, so posting-slab
    /// bounds do not cover them).
    pub fn route_topk<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        k: usize,
        rng: &mut R,
    ) -> AdaptiveOutcome {
        self.route_topk_with_scratch(query, k, rng, &mut RouteScratch::default())
    }

    /// [`route_topk`](Self::route_topk) with caller-provided scratch.
    pub fn route_topk_with_scratch<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        k: usize,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.choose_summaries(query, rng, scratch);
        let ctx = self.catalog.scoring_context(query, &used_shrinkage);
        let ranking = self.score_partition_topk(query, k, &ctx, &used_shrinkage, None, scratch);
        AdaptiveOutcome {
            ranking,
            used_shrinkage,
        }
    }

    /// The top-k counterpart of [`score_partition`](Self::score_partition):
    /// returns exactly the first `min(k, len)` entries the full partition
    /// ranking would have, bit for bit.
    ///
    /// Falls back to scoring the full partition (then truncating) when the
    /// algorithm has no kernel, the query is empty, or the catalog lacks
    /// the kernel invariants ([`Catalog::kernel_ready`]). Otherwise:
    ///
    /// 1. databases scored with their *shrunk* summary are gathered into a
    ///    flat row matrix and batch-scored — no pruning, but no per-entry
    ///    allocation or virtual dispatch either;
    /// 2. unshrunk candidates are scattered from the posting slabs into a
    ///    zeroed row matrix plus per-row presence masks, upper-bound
    ///    filtered against the heap's current k-th score, and only the
    ///    survivors are batch-scored.
    pub fn score_partition_topk(
        &self,
        query: &[TermId],
        k: usize,
        ctx: &CollectionContext,
        used_shrinkage: &[bool],
        global_indices: Option<&[u32]>,
        scratch: &mut RouteScratch,
    ) -> Vec<RankedDatabase> {
        if k == 0 {
            return Vec::new();
        }
        let kernel = match self.algorithm.score_kernel() {
            Some(kernel) if !query.is_empty() && self.catalog.kernel_ready() => kernel,
            _ => {
                let mut full =
                    self.score_partition(query, ctx, used_shrinkage, global_indices, scratch);
                full.truncate(k);
                return full;
            }
        };
        let n = self.catalog.len();
        debug_assert_eq!(used_shrinkage.len(), n);
        let qlen = query.len();
        let space = kernel.space();
        let bounds: Vec<TermBound> = query.iter().map(|&w| self.catalog.term_bound(w)).collect();
        let prep = kernel.prepare(query, ctx, &bounds, self.catalog.min_word_count());
        let mut heap = TopK::new(k.min(n));
        self.catalog.candidates_into(query, &mut scratch.candidates);

        // Phase A: shrunk-scored databases. Gathered per summary (shrunk
        // probabilities are not in the posting slabs) and batch-scored
        // without pruning, so Always mode gets the kernel win only.
        scratch.row_dbs.clear();
        scratch.row_sizes.clear();
        scratch.row_wcs.clear();
        scratch.matrix.clear();
        for db in 0..n {
            if !used_shrinkage[db] {
                continue;
            }
            let s = self.catalog.shrunk(db);
            scratch.row_dbs.push(db as u32);
            scratch.row_sizes.push(s.db_size());
            scratch.row_wcs.push(s.word_count());
            for &w in query {
                scratch.matrix.push(match space {
                    ProbabilitySpace::DocumentFrequency => s.p_df(w),
                    ProbabilitySpace::TokenFrequency => s.p_tf(w),
                });
            }
        }
        scratch.scores.clear();
        scratch.scores.resize(scratch.row_dbs.len(), 0.0);
        kernel.score_rows(
            &prep,
            &scratch.matrix,
            &scratch.row_sizes,
            &scratch.row_wcs,
            &mut scratch.scores,
        );
        for (r, &db) in scratch.row_dbs.iter().enumerate() {
            let score = scratch.scores[r];
            if score > prep.drop_threshold {
                let index = global_indices.map_or(db as usize, |g| g[db as usize] as usize);
                heap.push(RankedDatabase { index, score });
            }
        }

        // Phase B: unshrunk candidates. One pass over each query word's
        // posting slices scatters the native-space probabilities into a
        // zeroed matrix; absent (row, word) cells stay 0.0, which is
        // exactly the unshrunk summaries' default (`Catalog::kernel_ready`
        // guarantees it).
        scratch.row_of.clear();
        scratch.row_of.resize(n, u32::MAX);
        scratch.row_dbs.clear();
        scratch.row_sizes.clear();
        scratch.row_wcs.clear();
        for db in 0..n {
            if used_shrinkage[db] || !scratch.candidates[db] {
                continue;
            }
            let s = self.catalog.unshrunk(db);
            scratch.row_of[db] = scratch.row_dbs.len() as u32;
            scratch.row_dbs.push(db as u32);
            scratch.row_sizes.push(s.db_size());
            scratch.row_wcs.push(s.word_count());
        }
        let rows = scratch.row_dbs.len();
        scratch.matrix.clear();
        scratch.matrix.resize(rows * qlen, 0.0);
        scratch.masks.clear();
        scratch.masks.resize(rows, 0);
        for (kpos, &w) in query.iter().enumerate() {
            if let Some(p) = self.catalog.postings(w) {
                let slab = match space {
                    ProbabilitySpace::DocumentFrequency => p.p_df,
                    ProbabilitySpace::TokenFrequency => p.p_tf,
                };
                for (j, &db) in p.dbs.iter().enumerate() {
                    let row = scratch.row_of[db as usize];
                    if row != u32::MAX {
                        scratch.matrix[row as usize * qlen + kpos] = slab[j];
                        if kpos < 64 {
                            scratch.masks[row as usize] |= 1 << kpos;
                        }
                    }
                }
            }
        }

        // Blocked prune-then-score: filter a block of rows against the
        // current k-th score, compact the survivors, batch-score them.
        // Skipping requires *strictly* `ub < worst` — a bound equal to the
        // k-th score can still displace it on the index tiebreak.
        const BLOCK: usize = 128;
        let mut start = 0;
        while start < rows {
            let end = (start + BLOCK).min(rows);
            scratch.survivors.clear();
            for row in start..end {
                let ub = kernel.upper_bound(&prep, scratch.masks[row], scratch.row_sizes[row]);
                if ub <= prep.drop_threshold {
                    // The row cannot clear the ranker's drop filter.
                    continue;
                }
                if let Some(worst) = heap.worst_score() {
                    if ub < worst {
                        continue;
                    }
                }
                scratch.survivors.push(row as u32);
            }
            if scratch.survivors.is_empty() {
                start = end;
                continue;
            }
            scratch.compact.clear();
            scratch.compact_sizes.clear();
            scratch.compact_wcs.clear();
            for &row in &scratch.survivors {
                let row = row as usize;
                scratch
                    .compact
                    .extend_from_slice(&scratch.matrix[row * qlen..row * qlen + qlen]);
                scratch.compact_sizes.push(scratch.row_sizes[row]);
                scratch.compact_wcs.push(scratch.row_wcs[row]);
            }
            scratch.scores.clear();
            scratch.scores.resize(scratch.survivors.len(), 0.0);
            kernel.score_rows(
                &prep,
                &scratch.compact,
                &scratch.compact_sizes,
                &scratch.compact_wcs,
                &mut scratch.scores,
            );
            for (i, &row) in scratch.survivors.iter().enumerate() {
                let score = scratch.scores[i];
                if score > prep.drop_threshold {
                    let db = scratch.row_dbs[row as usize] as usize;
                    let index = global_indices.map_or(db, |g| g[db] as usize);
                    heap.push(RankedDatabase { index, score });
                }
            }
            start = end;
        }
        heap.into_sorted()
    }

    /// Route a batch of queries over `threads` worker threads. Query `i`
    /// draws from `db_rng(base_seed, i)`, so the output is independent of
    /// `threads` and of how queries are distributed over workers. Workers
    /// take contiguous chunks of the batch (one dispatch per worker, not
    /// per query), which keeps scheduling overhead off the per-query path.
    pub fn route_batch(
        &self,
        queries: &[Vec<TermId>],
        base_seed: u64,
        threads: usize,
    ) -> Vec<AdaptiveOutcome> {
        self.route_batch_observed(queries, base_seed, threads, |_, _| {})
    }

    /// [`route_batch`](Self::route_batch) with a per-query observer:
    /// `observe(query_index, wall_time)` is called from the worker thread
    /// that routed the query. Observation never changes results — it exists
    /// so callers (the CLI summary, the daemon's metrics) can collect
    /// latency histograms without a second pass.
    pub fn route_batch_observed(
        &self,
        queries: &[Vec<TermId>],
        base_seed: u64,
        threads: usize,
        observe: impl Fn(usize, std::time::Duration) + Sync,
    ) -> Vec<AdaptiveOutcome> {
        fan_out_chunks_with(
            queries.len(),
            threads,
            RouteScratch::default,
            |qi, scratch| {
                let started = Instant::now();
                let mut rng = db_rng(base_seed, qi);
                let outcome = self.route_with_scratch(&queries[qi], &mut rng, scratch);
                observe(qi, started.elapsed());
                outcome
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Catalog, CatalogEntry};
    use crate::test_support::{entry, sampled_summary, shrunk_for};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selection::{adaptive_rank, BGloss, Cori, Lm, SummaryPair};

    fn bgloss() -> Arc<dyn SelectionAlgorithm + Send + Sync> {
        Arc::new(BGloss)
    }

    /// A small mixed testbed: well-sampled small databases, poorly sampled
    /// large ones, and a database with no query-word overlap at all.
    fn entries() -> Vec<CatalogEntry> {
        vec![
            entry(
                "small-dense",
                sampled_summary(320.0, 300, &[(1, 150), (2, 140)]),
            ),
            entry(
                "large-sparse",
                sampled_summary(100_000.0, 300, &[(1, 3), (5, 1)]),
            ),
            entry("mid", sampled_summary(5_000.0, 200, &[(2, 80), (5, 40)])),
            entry("unrelated", sampled_summary(2_000.0, 100, &[(9, 60)])),
        ]
    }

    fn queries() -> Vec<Vec<TermId>> {
        vec![vec![1, 2], vec![2, 5, 42], vec![9], vec![], vec![1, 1, 2]]
    }

    fn assert_same_outcome(a: &AdaptiveOutcome, b: &AdaptiveOutcome) {
        assert_eq!(a.used_shrinkage, b.used_shrinkage);
        assert_eq!(a.ranking.len(), b.ranking.len());
        for (x, y) in a.ranking.iter().zip(&b.ranking) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "db {}", x.index);
        }
    }

    #[test]
    fn engine_matches_adaptive_rank_bit_for_bit() {
        let entries = entries();
        let pairs: Vec<SummaryPair<'_>> = entries
            .iter()
            .map(|e| SummaryPair {
                unshrunk: &e.unshrunk,
                shrunk: &e.shrunk,
            })
            .collect();
        let catalog = Arc::new(Catalog::build(entries.clone()));
        let global = sampled_summary(110_000.0, 900, &[(1, 300), (2, 250), (5, 80), (9, 60)]);
        let algorithms: [Arc<dyn SelectionAlgorithm + Send + Sync>; 3] = [
            Arc::new(BGloss),
            Arc::new(Cori::default()),
            Arc::new(Lm::new(0.5, &global)),
        ];
        for algorithm in algorithms {
            for mode in [
                ShrinkageMode::Adaptive,
                ShrinkageMode::Always,
                ShrinkageMode::Never,
            ] {
                let config = AdaptiveConfig {
                    mode,
                    ..Default::default()
                };
                let engine = SelectionEngine::new(
                    Arc::clone(&catalog),
                    Arc::clone(&algorithm),
                    config,
                    DEFAULT_CACHE_CAPACITY,
                );
                for (qi, query) in queries().iter().enumerate() {
                    let reference = adaptive_rank(
                        algorithm.as_ref(),
                        query,
                        &pairs,
                        &config,
                        &mut db_rng(7, qi),
                    );
                    let routed = engine.route(query, &mut db_rng(7, qi));
                    assert_same_outcome(&reference, &routed);
                }
            }
        }
    }

    #[test]
    fn cached_posteriors_do_not_change_decisions() {
        let catalog = Arc::new(Catalog::build(entries()));
        let engine = SelectionEngine::new(
            catalog,
            bgloss(),
            AdaptiveConfig::default(),
            DEFAULT_CACHE_CAPACITY,
        );
        let query = vec![1, 2, 42];
        let cold = engine.route(&query, &mut StdRng::seed_from_u64(5));
        let stats = engine.cache_stats();
        assert!(stats.misses > 0);
        let warm = engine.route(&query, &mut StdRng::seed_from_u64(5));
        assert_same_outcome(&cold, &warm);
        let after = engine.cache_stats();
        assert_eq!(after.misses, stats.misses, "second pass is fully cached");
        assert!(after.hits > stats.hits);
        assert!(after.hit_rate() > 0.0);
        engine.clear_cache();
        assert_eq!(engine.cache_stats(), CacheStats::default());
        let refilled = engine.route(&query, &mut StdRng::seed_from_u64(5));
        assert_same_outcome(&cold, &refilled);
    }

    #[test]
    fn bounded_cache_evicts_without_changing_rankings() {
        let catalog = Arc::new(Catalog::build(entries()));
        let unbounded =
            SelectionEngine::new(Arc::clone(&catalog), bgloss(), AdaptiveConfig::default(), 0);
        // Tiny capacity: one entry per stripe, so multi-term queries over
        // four databases must evict constantly.
        let tiny = SelectionEngine::new(catalog, bgloss(), AdaptiveConfig::default(), 1);
        for (qi, query) in queries().iter().enumerate() {
            let a = unbounded.route(query, &mut db_rng(3, qi));
            let b = tiny.route(query, &mut db_rng(3, qi));
            assert_same_outcome(&a, &b);
        }
        let stats = tiny.cache_stats();
        assert!(stats.evictions > 0, "tiny cache must evict: {stats:?}");
        assert_eq!(unbounded.cache_stats().evictions, 0);
        // Capacity is enforced: no stripe ever exceeds its cap, so the
        // resident entry count stays within the configured total.
        let resident = stats.misses - stats.evictions;
        assert!(resident <= CACHE_SHARDS as u64);
    }

    #[test]
    fn batch_results_match_sequential_routing() {
        let catalog = Arc::new(Catalog::build(entries()));
        let engine = SelectionEngine::new(
            catalog,
            bgloss(),
            AdaptiveConfig::default(),
            DEFAULT_CACHE_CAPACITY,
        );
        let queries = queries();
        let batched = engine.route_batch(&queries, 99, 4);
        assert_eq!(batched.len(), queries.len());
        for (qi, (query, out)) in queries.iter().zip(&batched).enumerate() {
            let solo = engine.route(query, &mut db_rng(99, qi));
            assert_same_outcome(&solo, out);
        }
    }

    #[test]
    fn batch_observer_sees_every_query() {
        let catalog = Arc::new(Catalog::build(entries()));
        let engine = SelectionEngine::new(
            catalog,
            bgloss(),
            AdaptiveConfig::default(),
            DEFAULT_CACHE_CAPACITY,
        );
        let queries = queries();
        let seen = Mutex::new(vec![false; queries.len()]);
        engine.route_batch_observed(&queries, 1, 3, |qi, _elapsed| {
            seen.lock().unwrap()[qi] = true;
        });
        assert!(seen.into_inner().unwrap().iter().all(|&s| s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite invariant: the engine's batched output is independent
        /// of the worker-thread count, including the Monte-Carlo draws of
        /// the Adaptive uncertainty test.
        #[test]
        fn thread_count_never_changes_engine_output(
            base_seed in 0u64..1_000_000,
            db_sizes in proptest::collection::vec(100.0f64..50_000.0, 1..5),
        ) {
            let entries: Vec<CatalogEntry> = db_sizes
                .iter()
                .enumerate()
                .map(|(i, &db_size)| {
                    let words: Vec<(TermId, u32)> = (0..4)
                        .map(|w| (w + 1, ((i as u32 + 1) * (w + 7)) % 90))
                        .filter(|&(_, sdf)| sdf > 0)
                        .collect();
                    let unshrunk = sampled_summary(db_size, 100, &words);
                    let shrunk = shrunk_for(&unshrunk, &[(1, 0.05), (3, 0.02)]);
                    CatalogEntry { name: format!("db{i}"), unshrunk, shrunk }
                })
                .collect();
            let catalog = Arc::new(Catalog::build(entries));
            let engine = SelectionEngine::new(
                catalog,
                bgloss(),
                AdaptiveConfig::default(),
                DEFAULT_CACHE_CAPACITY,
            );
            let queries: Vec<Vec<TermId>> =
                vec![vec![1, 3], vec![2, 4, 9], vec![1], vec![4, 4, 2]];
            let single = engine.route_batch(&queries, base_seed, 1);
            let parallel = engine.route_batch(&queries, base_seed, 8);
            prop_assert_eq!(single.len(), parallel.len());
            for (a, b) in single.iter().zip(&parallel) {
                prop_assert_eq!(&a.used_shrinkage, &b.used_shrinkage);
                prop_assert_eq!(a.ranking.len(), b.ranking.len());
                for (x, y) in a.ranking.iter().zip(&b.ranking) {
                    prop_assert_eq!(x.index, y.index);
                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }

        /// Tentpole guardrail: `route_topk` is **bit-identical** to
        /// truncating the full ranking, for every algorithm × shrinkage
        /// mode × k (including k > n), on random catalogs. Adaptive mode
        /// must consume the exact same Monte-Carlo RNG stream on both
        /// paths, which `used_shrinkage` equality witnesses.
        #[test]
        fn route_topk_matches_truncated_full_ranking(
            seed in 0u64..1_000_000,
            db_sizes in proptest::collection::vec(50.0f64..80_000.0, 1..7),
        ) {
            let entries: Vec<CatalogEntry> = db_sizes
                .iter()
                .enumerate()
                .map(|(i, &db_size)| {
                    let words: Vec<(TermId, u32)> = (0..5)
                        .map(|w| (w + 1, ((i as u32 + 2) * (w + 3) * 13) % 95))
                        .filter(|&(_, sdf)| sdf > 0)
                        .collect();
                    let unshrunk = sampled_summary(db_size, 100, &words);
                    let shrunk = shrunk_for(&unshrunk, &[(1, 0.05), (3, 0.02), (9, 0.001)]);
                    CatalogEntry { name: format!("db{i}"), unshrunk, shrunk }
                })
                .collect();
            let catalog = Arc::new(Catalog::build(entries));
            prop_assert!(catalog.kernel_ready(), "built catalogs expose kernel aux columns");
            let global = sampled_summary(
                200_000.0,
                500,
                &[(1, 40), (2, 30), (3, 20), (4, 10), (9, 5)],
            );
            let algorithms: [Arc<dyn SelectionAlgorithm + Send + Sync>; 3] = [
                Arc::new(BGloss),
                Arc::new(Cori::default()),
                Arc::new(Lm::new(0.5, &global)),
            ];
            let queries: Vec<Vec<TermId>> =
                vec![vec![1, 3], vec![2, 4, 9], vec![1], vec![], vec![4, 4, 2, 1]];
            for algorithm in &algorithms {
                for mode in [
                    ShrinkageMode::Adaptive,
                    ShrinkageMode::Always,
                    ShrinkageMode::Never,
                ] {
                    let config = AdaptiveConfig { mode, ..Default::default() };
                    let engine = SelectionEngine::new(
                        Arc::clone(&catalog),
                        Arc::clone(algorithm),
                        config,
                        DEFAULT_CACHE_CAPACITY,
                    );
                    for (qi, query) in queries.iter().enumerate() {
                        let full = engine.route(query, &mut db_rng(seed, qi));
                        prop_assert!(
                            engine.route_topk(query, 0, &mut db_rng(seed, qi)).ranking.is_empty()
                        );
                        for k in 1..=engine.catalog().len() + 1 {
                            let pruned = engine.route_topk(query, k, &mut db_rng(seed, qi));
                            prop_assert_eq!(&pruned.used_shrinkage, &full.used_shrinkage);
                            let want = &full.ranking[..k.min(full.ranking.len())];
                            prop_assert_eq!(pruned.ranking.len(), want.len());
                            for (x, y) in pruned.ranking.iter().zip(want) {
                                prop_assert_eq!(x.index, y.index);
                                prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                            }
                        }
                    }
                }
            }
        }
    }
}
