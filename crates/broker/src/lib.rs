//! `broker` — the serving layer of the reproduction.
//!
//! Everything up to this crate is *profiling*: sampling databases,
//! building content summaries, fitting γ, running the shrinkage EM. The
//! broker freezes the result of profiling into an immutable [`Catalog`]
//! — per-database summary pairs plus a summary-level inverted index — and
//! serves query batches through a [`SelectionEngine`] that reproduces
//! [`selection::adaptive_rank`] bit for bit at a fraction of the per-query
//! cost (posting-list candidate generation, memoized word-posterior grids,
//! catalog-constant collection statistics).
//!
//! The split mirrors the paper's deployment story: summaries are updated
//! rarely (Section 6's testbeds are profiled once), while queries arrive
//! continuously and must be routed cheaply.

pub mod catalog;
pub mod engine;
pub mod shard;

#[cfg(test)]
pub(crate) mod test_support;

pub use catalog::{Catalog, CatalogEntry, DbUpdate, PostingIndex, Postings};
pub use engine::{CacheStats, RouteScratch, SelectionEngine, DEFAULT_CACHE_CAPACITY};
pub use shard::{Partitioning, ShardPlan, ShardSet, ShardedEngine};
