//! Shard scatter-gather: partition a frozen [`Catalog`] into sub-catalogs
//! and score them in parallel without changing a single ranking bit.
//!
//! BENCH_server.json run 5 showed `/route` throughput is scoring-bound:
//! with connection lifecycle off the hot path, one core saturates on
//! posterior math and per-candidate scoring. Scoring is also embarrassingly
//! parallel *per database* — every score is a pure function of
//! `(algorithm, query, summary view, CollectionContext)` — so a shard of
//! the catalog can score its databases on its own core and the merged
//! ranking is exactly the monolithic one, provided two things never become
//! shard-local:
//!
//! 1. **The collection context.** `m`, `cf(w)`, and `mcw` are statistics
//!    of the *whole* collection. [`ShardedEngine`] computes them once from
//!    the full catalog and hands the same `CollectionContext` to every
//!    shard scorer; sub-catalogs even carry the global `mcw` constant so
//!    no path can accidentally reach a shard-local mean.
//! 2. **The adaptive RNG stream.** `ShrinkageMode::Adaptive` runs the
//!    Section-4 uncertainty test for every database *in catalog order
//!    against one shared RNG* — a sequential stream by construction. The
//!    scatter therefore covers only the scoring phase; summary choice runs
//!    on the full engine first, exactly as the unsharded path would.
//!
//! With those pinned, each shard's ranking is sorted by
//! [`selection::ranking_order`] over globally-indexed databases, shards
//! partition the index space, and [`selection::merge::merge_rankings`]
//! reconstructs the monolithic sort bit for bit (`f64::to_bits` scores
//! included) — asserted by the proptest below across all three algorithms
//! and all three shrinkage modes.
//!
//! [`ShardPlan`] decides who lives where: contiguous blocks (the default —
//! preserves locality of catalog order), name-hash (stable under
//! reordering), or topic-subtree (databases sharing a top-level topic of
//! the classification hierarchy stay on one shard, the layout a federated
//! deployment over "Automatic Classification of Text Databases through
//! Query Probing" hierarchies would pick).

use std::sync::Arc;

use rand::Rng;
use sampling::scheduler::{db_rng, fan_out, fan_out_chunks_with};
use selection::merge::merge_rankings;
use selection::{AdaptiveOutcome, CollectionContext, RankedDatabase};
use textindex::TermId;

use crate::catalog::{Catalog, PostingIndex};
use crate::engine::{RouteScratch, SelectionEngine};

/// How databases are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partitioning {
    /// Contiguous blocks of catalog order (`ceil(n/shards)` each).
    #[default]
    Contiguous,
    /// FNV-1a hash of the database name, modulo the shard count.
    Hash,
    /// Group by top-level topic segment of each database's classification
    /// path ("Health/Heart" → "Health"); topics are assigned to shards
    /// round-robin in sorted topic order, so databases of one subtree
    /// co-locate.
    Topic,
}

/// FNV-1a, the workspace's stable non-cryptographic hash (same constants
/// as the snapshot checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A validated database → shard assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `assignments[db] = shard`, each `< shards`.
    assignments: Vec<u32>,
    shards: usize,
}

impl ShardPlan {
    /// Contiguous block partitioning of `n_dbs` databases.
    pub fn contiguous(n_dbs: usize, shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let block = n_dbs.div_ceil(shards).max(1);
        ShardPlan {
            assignments: (0..n_dbs).map(|db| (db / block) as u32).collect(),
            shards,
        }
    }

    /// Name-hash partitioning: stable under catalog reordering.
    pub fn hash(names: &[String], shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        ShardPlan {
            assignments: names
                .iter()
                .map(|n| (fnv1a(n.as_bytes()) % shards as u64) as u32)
                .collect(),
            shards,
        }
    }

    /// Topic-subtree partitioning over classification paths (one per
    /// database, e.g. `"Health/Heart"`). Databases sharing a top-level
    /// topic always land on the same shard.
    pub fn topic(categories: &[String], shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let top = |c: &str| c.split('/').next().unwrap_or("").to_string();
        let mut topics: Vec<String> = categories.iter().map(|c| top(c)).collect();
        let mut distinct = topics.clone();
        distinct.sort();
        distinct.dedup();
        let shard_of = |t: &String| {
            let pos = distinct.binary_search(t).expect("topic collected above");
            (pos % shards) as u32
        };
        ShardPlan {
            assignments: topics.drain(..).map(|t| shard_of(&t)).collect(),
            shards,
        }
    }

    /// An explicit assignment, validated.
    pub fn from_assignments(
        assignments: Vec<u32>,
        shards: usize,
    ) -> Result<ShardPlan, &'static str> {
        if shards == 0 {
            return Err("shard count must be at least 1");
        }
        if assignments.iter().any(|&s| s as usize >= shards) {
            return Err("shard assignment out of range");
        }
        Ok(ShardPlan {
            assignments,
            shards,
        })
    }

    /// Number of shards (some may be empty).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The raw assignment column.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Per-shard member lists, each ascending in global database index —
    /// the order sub-catalogs are built in, which keeps every shard's local
    /// order a subsequence of catalog order.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut members = vec![Vec::new(); self.shards];
        for (db, &s) in self.assignments.iter().enumerate() {
            members[s as usize].push(db as u32);
        }
        members
    }
}

/// A catalog partitioned into per-shard sub-catalogs. Algorithm-agnostic
/// and cheap to share: each serving mode's [`ShardedEngine`] borrows the
/// same `ShardSet` behind an `Arc` instead of re-slicing the columns nine
/// times.
#[derive(Debug, Clone)]
pub struct ShardSet {
    plan: ShardPlan,
    /// `members[s]` = global database indices of shard `s`, ascending.
    members: Vec<Vec<u32>>,
    /// The sub-catalog of each shard. Carries the **global** `mcw`: a
    /// shard must never observe a shard-local collection constant.
    catalogs: Vec<Arc<Catalog>>,
}

impl ShardSet {
    /// Slice `catalog` according to `plan`.
    pub fn build(catalog: &Catalog, plan: ShardPlan) -> Result<ShardSet, &'static str> {
        if plan.assignments.len() != catalog.len() {
            return Err("shard plan covers a different database count");
        }
        let members = plan.members();
        let catalogs = members
            .iter()
            .map(|dbs| {
                let names = dbs
                    .iter()
                    .map(|&g| catalog.names()[g as usize].clone())
                    .collect();
                let unshrunk: Vec<_> = dbs
                    .iter()
                    .map(|&g| catalog.unshrunk(g as usize).clone())
                    .collect();
                let shrunk = dbs
                    .iter()
                    .map(|&g| catalog.shrunk(g as usize).clone())
                    .collect();
                let gammas = dbs.iter().map(|&g| catalog.gamma(g as usize)).collect();
                let index = PostingIndex::build(&unshrunk);
                let sub =
                    Catalog::from_raw_parts(names, unshrunk, shrunk, gammas, catalog.mcw(), index)
                        .expect("shard columns are aligned by construction");
                Arc::new(sub)
            })
            .collect();
        Ok(ShardSet {
            plan,
            members,
            catalogs,
        })
    }

    /// The plan this set was sliced by.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.catalogs.len()
    }

    /// Global database indices of shard `s`, ascending.
    pub fn members_of(&self, s: usize) -> &[u32] {
        &self.members[s]
    }

    /// The sub-catalog of shard `s`.
    pub fn catalog_of(&self, s: usize) -> &Arc<Catalog> {
        &self.catalogs[s]
    }
}

/// The scatter-gather engine: summary choice on the full catalog, scoring
/// fanned out over shard scorers, rankings gathered through
/// [`merge_rankings`]. Rankings are bit-identical to the wrapped
/// [`SelectionEngine`]'s for every query, seed, algorithm, and shrinkage
/// mode.
pub struct ShardedEngine {
    full: Arc<SelectionEngine>,
    set: Arc<ShardSet>,
    /// One scorer per shard, sharing the full engine's algorithm `Arc` and
    /// config. Their posterior caches stay cold — the uncertainty test
    /// (the only posterior consumer) runs on `full`.
    scorers: Vec<SelectionEngine>,
    /// Worker threads for the per-query scatter (clamped to shard count).
    threads: usize,
}

impl ShardedEngine {
    /// Wrap `full` with scatter-gather scoring over `set`.
    pub fn new(full: Arc<SelectionEngine>, set: Arc<ShardSet>, threads: usize) -> ShardedEngine {
        let scorers = (0..set.shard_count())
            .map(|s| {
                SelectionEngine::new(
                    Arc::clone(set.catalog_of(s)),
                    full.algorithm(),
                    *full.config(),
                    // Scorers never touch posteriors; keep their caches tiny.
                    1,
                )
            })
            .collect();
        let threads = threads.clamp(1, set.shard_count().max(1));
        ShardedEngine {
            full,
            set,
            scorers,
            threads,
        }
    }

    /// The monolithic engine this scatter-gather wraps.
    pub fn inner(&self) -> &SelectionEngine {
        &self.full
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.scorers.len()
    }

    /// Rank databases for one query; bit-identical to
    /// [`SelectionEngine::route`] on the full catalog.
    pub fn route<R: Rng + ?Sized>(&self, query: &[TermId], rng: &mut R) -> AdaptiveOutcome {
        self.route_with_scratch(query, rng, &mut RouteScratch::default())
    }

    /// [`route`](Self::route) with reusable scratch (used by the full
    /// engine's choose phase; shard scorers carry worker-local scratch).
    pub fn route_with_scratch<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.full.choose_summaries(query, rng, scratch);
        let ctx = self.full.catalog().scoring_context(query, &used_shrinkage);
        let per_shard = fan_out(self.scorers.len(), self.threads, |s| {
            self.score_shard(
                s,
                query,
                &ctx,
                &used_shrinkage,
                &mut RouteScratch::default(),
            )
        });
        AdaptiveOutcome {
            ranking: merge_rankings(&per_shard),
            used_shrinkage,
        }
    }

    /// Rank only the top `k` databases; bit-identical to truncating
    /// [`route`](Self::route)'s merged ranking to `k` entries.
    ///
    /// Each shard computes its *local* top `k` through the pruned kernel
    /// path ([`SelectionEngine::score_partition_topk`]), the partial lists
    /// merge through [`merge_rankings`], and the merge is truncated to `k`.
    /// Correct because every entry of the global top `k` is, a fortiori,
    /// within its own shard's top `k` — so no survivor is ever pruned on
    /// the shard that owns it, and [`merge_rankings`] of the truncated
    /// per-shard lists agrees with the truncated full merge on the first
    /// `k` entries.
    pub fn route_topk<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        k: usize,
        rng: &mut R,
    ) -> AdaptiveOutcome {
        self.route_topk_with_scratch(query, k, rng, &mut RouteScratch::default())
    }

    /// [`route_topk`](Self::route_topk) with caller-provided scratch for
    /// the choose phase.
    pub fn route_topk_with_scratch<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        k: usize,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.full.choose_summaries(query, rng, scratch);
        let ctx = self.full.catalog().scoring_context(query, &used_shrinkage);
        let per_shard = fan_out(self.scorers.len(), self.threads, |s| {
            self.score_shard_topk(
                s,
                query,
                k,
                &ctx,
                &used_shrinkage,
                &mut RouteScratch::default(),
            )
        });
        let mut ranking = merge_rankings(&per_shard);
        ranking.truncate(k);
        AdaptiveOutcome {
            ranking,
            used_shrinkage,
        }
    }

    /// [`route_topk`](Self::route_topk) with the shard scatter run
    /// sequentially on the calling thread — the top-k counterpart of
    /// [`route_sequential`](Self::route_sequential), used by the batch
    /// handler's per-query workers.
    pub fn route_sequential_topk<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        k: usize,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.full.choose_summaries(query, rng, scratch);
        let ctx = self.full.catalog().scoring_context(query, &used_shrinkage);
        let per_shard: Vec<Vec<RankedDatabase>> = (0..self.scorers.len())
            .map(|s| self.score_shard_topk(s, query, k, &ctx, &used_shrinkage, scratch))
            .collect();
        let mut ranking = merge_rankings(&per_shard);
        ranking.truncate(k);
        AdaptiveOutcome {
            ranking,
            used_shrinkage,
        }
    }

    /// [`route`](Self::route), but scoring every shard sequentially on
    /// the calling thread — for callers that already parallelize across
    /// queries and must not nest a per-query scatter inside their own
    /// fan-out. Bit-identical to [`route`](Self::route).
    pub fn route_sequential<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.full.choose_summaries(query, rng, scratch);
        let ctx = self.full.catalog().scoring_context(query, &used_shrinkage);
        let per_shard: Vec<Vec<RankedDatabase>> = (0..self.scorers.len())
            .map(|s| self.score_shard(s, query, &ctx, &used_shrinkage, scratch))
            .collect();
        AdaptiveOutcome {
            ranking: merge_rankings(&per_shard),
            used_shrinkage,
        }
    }

    /// Score **one** shard, reporting global database indices — the
    /// backend half of a *federated* deployment, where each shard lives
    /// behind a remote daemon and a proxy gathers the partial rankings.
    ///
    /// Every backend holds the full catalog and runs the identical
    /// sequential choose phase (same RNG stream for the same seed) plus
    /// the global collection context, then scores only `shard`'s members.
    /// Collecting `route_shard` over all shards and merging through
    /// [`merge_rankings`] is therefore bit-identical to
    /// [`route`](Self::route) — the same argument as the in-process
    /// scatter, just with the scatter on the other side of a socket.
    ///
    /// The returned outcome's `ranking` holds only `shard`'s databases
    /// (sorted by `ranking_order`, global indices); `used_shrinkage`
    /// still covers the full catalog.
    pub fn route_shard<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        rng: &mut R,
        shard: usize,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.full.choose_summaries(query, rng, scratch);
        let ctx = self.full.catalog().scoring_context(query, &used_shrinkage);
        let ranking = self.score_shard(shard, query, &ctx, &used_shrinkage, scratch);
        AdaptiveOutcome {
            ranking,
            used_shrinkage,
        }
    }

    /// [`route_shard`](Self::route_shard) truncated to the shard-local top
    /// `k` through the pruned kernel path — what a federated backend
    /// returns when the proxy forwards a `"k"` request field. Merging all
    /// shards' partial lists and truncating to `k` reproduces the
    /// monolithic top `k` bit for bit (see
    /// [`route_topk`](Self::route_topk)).
    pub fn route_shard_topk<R: Rng + ?Sized>(
        &self,
        query: &[TermId],
        k: usize,
        rng: &mut R,
        shard: usize,
        scratch: &mut RouteScratch,
    ) -> AdaptiveOutcome {
        let used_shrinkage = self.full.choose_summaries(query, rng, scratch);
        let ctx = self.full.catalog().scoring_context(query, &used_shrinkage);
        let ranking = self.score_shard_topk(shard, query, k, &ctx, &used_shrinkage, scratch);
        AdaptiveOutcome {
            ranking,
            used_shrinkage,
        }
    }

    /// Route a batch over `threads` workers, parallel across *queries*
    /// (shards score sequentially inside each query — the scatter and the
    /// batch fan-out would otherwise fight for the same cores). Query `i`
    /// draws from `db_rng(base_seed, i)`; results are independent of the
    /// thread count and bit-identical to
    /// [`SelectionEngine::route_batch`].
    pub fn route_batch(
        &self,
        queries: &[Vec<TermId>],
        base_seed: u64,
        threads: usize,
    ) -> Vec<AdaptiveOutcome> {
        fan_out_chunks_with(
            queries.len(),
            threads,
            RouteScratch::default,
            |qi, scratch| {
                let mut rng = db_rng(base_seed, qi);
                self.route_sequential(&queries[qi], &mut rng, scratch)
            },
        )
    }

    /// Score shard `s` against the global context, reporting global
    /// database indices.
    fn score_shard(
        &self,
        s: usize,
        query: &[TermId],
        ctx: &CollectionContext,
        used_shrinkage: &[bool],
        scratch: &mut RouteScratch,
    ) -> Vec<RankedDatabase> {
        let members = self.set.members_of(s);
        let local_used: Vec<bool> = members
            .iter()
            .map(|&g| used_shrinkage[g as usize])
            .collect();
        self.scorers[s].score_partition(query, ctx, &local_used, Some(members), scratch)
    }

    /// Shard `s`'s local top `k` against the global context, global
    /// database indices.
    fn score_shard_topk(
        &self,
        s: usize,
        query: &[TermId],
        k: usize,
        ctx: &CollectionContext,
        used_shrinkage: &[bool],
        scratch: &mut RouteScratch,
    ) -> Vec<RankedDatabase> {
        let members = self.set.members_of(s);
        let local_used: Vec<bool> = members
            .iter()
            .map(|&g| used_shrinkage[g as usize])
            .collect();
        self.scorers[s].score_partition_topk(query, k, ctx, &local_used, Some(members), scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogEntry;
    use crate::engine::DEFAULT_CACHE_CAPACITY;
    use crate::test_support::{sampled_summary, shrunk_for};
    use proptest::prelude::*;
    use selection::{AdaptiveConfig, BGloss, Cori, Lm, SelectionAlgorithm, ShrinkageMode};

    fn entries(n: usize) -> Vec<CatalogEntry> {
        (0..n)
            .map(|i| {
                let words: Vec<(TermId, u32)> = (0..5)
                    .map(|w| (w + 1, ((i as u32 + 1) * (w + 3)) % 70))
                    .filter(|&(_, sdf)| sdf > 0)
                    .collect();
                let unshrunk = sampled_summary(500.0 + 9_000.0 * i as f64, 120, &words);
                let shrunk = shrunk_for(&unshrunk, &[(1, 0.04), (4, 0.01)]);
                CatalogEntry {
                    name: format!("db{i}"),
                    unshrunk,
                    shrunk,
                }
            })
            .collect()
    }

    fn queries() -> Vec<Vec<TermId>> {
        vec![vec![1, 2], vec![3, 4, 9], vec![5], vec![], vec![2, 2, 1]]
    }

    fn assert_same_outcome(a: &AdaptiveOutcome, b: &AdaptiveOutcome) {
        assert_eq!(a.used_shrinkage, b.used_shrinkage);
        assert_eq!(a.ranking.len(), b.ranking.len());
        for (x, y) in a.ranking.iter().zip(&b.ranking) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "db {}", x.index);
        }
    }

    #[test]
    fn contiguous_plan_covers_every_database() {
        let plan = ShardPlan::contiguous(7, 3);
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(plan.assignments(), &[0, 0, 0, 1, 1, 1, 2]);
        let members = plan.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 7);
        assert!(members.iter().all(|m| m.windows(2).all(|w| w[0] < w[1])));
    }

    #[test]
    fn degenerate_plans_are_sane() {
        assert_eq!(
            ShardPlan::contiguous(0, 4).members(),
            vec![Vec::<u32>::new(); 4]
        );
        assert_eq!(
            ShardPlan::contiguous(3, 0).shard_count(),
            1,
            "0 clamps to 1"
        );
        assert_eq!(ShardPlan::contiguous(2, 8).members()[0], vec![0]);
        assert!(ShardPlan::from_assignments(vec![0, 2], 2).is_err());
        assert!(ShardPlan::from_assignments(vec![], 0).is_err());
        assert!(ShardPlan::from_assignments(vec![0, 1], 2).is_ok());
    }

    #[test]
    fn hash_plan_is_name_stable() {
        let names: Vec<String> = (0..6).map(|i| format!("db{i}")).collect();
        let a = ShardPlan::hash(&names, 3);
        let mut reversed = names.clone();
        reversed.reverse();
        let b = ShardPlan::hash(&reversed, 3);
        for (i, name) in names.iter().enumerate() {
            let j = reversed.iter().position(|n| n == name).unwrap();
            assert_eq!(a.assignments()[i], b.assignments()[j], "{name}");
        }
    }

    #[test]
    fn topic_plan_colocates_subtrees() {
        let categories: Vec<String> = [
            "Health/Heart",
            "Sports/Soccer",
            "Health/Immunology",
            "Finance",
            "Sports",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let plan = ShardPlan::topic(&categories, 2);
        assert_eq!(
            plan.assignments()[0],
            plan.assignments()[2],
            "Health together"
        );
        assert_eq!(
            plan.assignments()[1],
            plan.assignments()[4],
            "Sports together"
        );
    }

    #[test]
    fn sharded_routing_matches_monolithic_bit_for_bit() {
        let catalog = Arc::new(Catalog::build(entries(9)));
        let global = sampled_summary(
            120_000.0,
            900,
            &[(1, 300), (2, 250), (3, 80), (4, 60), (5, 40)],
        );
        let algorithms: [Arc<dyn SelectionAlgorithm + Send + Sync>; 3] = [
            Arc::new(BGloss),
            Arc::new(Cori::default()),
            Arc::new(Lm::new(0.5, &global)),
        ];
        for algorithm in algorithms {
            for mode in [
                ShrinkageMode::Adaptive,
                ShrinkageMode::Always,
                ShrinkageMode::Never,
            ] {
                let config = AdaptiveConfig {
                    mode,
                    ..Default::default()
                };
                let full = Arc::new(SelectionEngine::new(
                    Arc::clone(&catalog),
                    Arc::clone(&algorithm),
                    config,
                    DEFAULT_CACHE_CAPACITY,
                ));
                for shards in [1usize, 2, 4, 9, 16] {
                    let set = Arc::new(
                        ShardSet::build(&catalog, ShardPlan::contiguous(catalog.len(), shards))
                            .unwrap(),
                    );
                    let sharded = ShardedEngine::new(Arc::clone(&full), set, 4);
                    for (qi, query) in queries().iter().enumerate() {
                        let mono = full.route(query, &mut db_rng(11, qi));
                        let scat = sharded.route(query, &mut db_rng(11, qi));
                        assert_same_outcome(&mono, &scat);
                    }
                }
            }
        }
    }

    #[test]
    fn per_shard_partial_routes_merge_into_the_monolithic_ranking() {
        let catalog = Arc::new(Catalog::build(entries(9)));
        let global = sampled_summary(120_000.0, 900, &[(1, 300), (2, 250), (3, 80), (4, 60)]);
        let algorithms: [Arc<dyn SelectionAlgorithm + Send + Sync>; 3] = [
            Arc::new(BGloss),
            Arc::new(Cori::default()),
            Arc::new(Lm::new(0.5, &global)),
        ];
        for algorithm in algorithms {
            for mode in [
                ShrinkageMode::Adaptive,
                ShrinkageMode::Always,
                ShrinkageMode::Never,
            ] {
                let config = AdaptiveConfig {
                    mode,
                    ..Default::default()
                };
                let full = Arc::new(SelectionEngine::new(
                    Arc::clone(&catalog),
                    Arc::clone(&algorithm),
                    config,
                    DEFAULT_CACHE_CAPACITY,
                ));
                let set = Arc::new(
                    ShardSet::build(&catalog, ShardPlan::contiguous(catalog.len(), 3)).unwrap(),
                );
                let sharded = ShardedEngine::new(Arc::clone(&full), set, 2);
                for (qi, query) in queries().iter().enumerate() {
                    let mono = full.route(query, &mut db_rng(5, qi));
                    // Each shard routed independently, each with its own
                    // fresh RNG — exactly what N remote backends would do.
                    let per_shard: Vec<Vec<RankedDatabase>> = (0..sharded.shard_count())
                        .map(|s| {
                            let partial = sharded.route_shard(
                                query,
                                &mut db_rng(5, qi),
                                s,
                                &mut RouteScratch::default(),
                            );
                            assert_eq!(
                                partial.used_shrinkage, mono.used_shrinkage,
                                "choose phase must be shard-invariant"
                            );
                            partial.ranking
                        })
                        .collect();
                    let gathered = AdaptiveOutcome {
                        ranking: merge_rankings(&per_shard),
                        used_shrinkage: mono.used_shrinkage.clone(),
                    };
                    assert_same_outcome(&mono, &gathered);
                }
            }
        }
    }

    #[test]
    fn sharded_batch_matches_monolithic_batch() {
        let catalog = Arc::new(Catalog::build(entries(6)));
        let full = Arc::new(SelectionEngine::new(
            Arc::clone(&catalog),
            Arc::new(BGloss) as Arc<dyn SelectionAlgorithm + Send + Sync>,
            AdaptiveConfig::default(),
            DEFAULT_CACHE_CAPACITY,
        ));
        let set = Arc::new(ShardSet::build(&catalog, ShardPlan::hash(catalog.names(), 3)).unwrap());
        let sharded = ShardedEngine::new(Arc::clone(&full), set, 2);
        let queries = queries();
        let mono = full.route_batch(&queries, 77, 4);
        let scat = sharded.route_batch(&queries, 77, 4);
        assert_eq!(mono.len(), scat.len());
        for (a, b) in mono.iter().zip(&scat) {
            assert_same_outcome(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Satellite invariant: for any catalog, any shard count, and any
        /// partitioning, the scatter-gathered merged ranking equals the
        /// monolithic ranking at `f64::to_bits`, across all 3 algorithms ×
        /// 3 shrinkage modes.
        #[test]
        fn any_partitioning_is_bit_identical(
            seed in 0u64..1_000_000,
            db_sizes in proptest::collection::vec(100.0f64..60_000.0, 1..8),
            shards in 1usize..6,
            scheme in 0usize..3,
        ) {
            let entries: Vec<CatalogEntry> = db_sizes
                .iter()
                .enumerate()
                .map(|(i, &db_size)| {
                    let words: Vec<(TermId, u32)> = (0..4)
                        .map(|w| (w + 1, ((i as u32 + 2) * (w + 5)) % 80))
                        .filter(|&(_, sdf)| sdf > 0)
                        .collect();
                    let unshrunk = sampled_summary(db_size, 100, &words);
                    let shrunk = shrunk_for(&unshrunk, &[(2, 0.05), (3, 0.02)]);
                    CatalogEntry { name: format!("db{i}"), unshrunk, shrunk }
                })
                .collect();
            let catalog = Arc::new(Catalog::build(entries));
            let topics: Vec<String> = (0..catalog.len())
                .map(|i| format!("T{}/sub{}", i % 3, i))
                .collect();
            let plan = match scheme {
                0 => ShardPlan::contiguous(catalog.len(), shards),
                1 => ShardPlan::hash(catalog.names(), shards),
                _ => ShardPlan::topic(&topics, shards),
            };
            let set = Arc::new(ShardSet::build(&catalog, plan).unwrap());
            let global = sampled_summary(
                130_000.0,
                900,
                &[(1, 280), (2, 230), (3, 90), (4, 50)],
            );
            let algorithms: [Arc<dyn SelectionAlgorithm + Send + Sync>; 3] = [
                Arc::new(BGloss),
                Arc::new(Cori::default()),
                Arc::new(Lm::new(0.5, &global)),
            ];
            let queries: Vec<Vec<TermId>> = vec![vec![1, 3], vec![2, 4, 9], vec![1], vec![]];
            for algorithm in algorithms {
                for mode in [
                    ShrinkageMode::Adaptive,
                    ShrinkageMode::Always,
                    ShrinkageMode::Never,
                ] {
                    let config = AdaptiveConfig { mode, ..Default::default() };
                    let full = Arc::new(SelectionEngine::new(
                        Arc::clone(&catalog),
                        Arc::clone(&algorithm),
                        config,
                        DEFAULT_CACHE_CAPACITY,
                    ));
                    let sharded = ShardedEngine::new(Arc::clone(&full), Arc::clone(&set), 3);
                    for (qi, query) in queries.iter().enumerate() {
                        let mono = full.route(query, &mut db_rng(seed, qi));
                        let scat = sharded.route(query, &mut db_rng(seed, qi));
                        prop_assert_eq!(&mono.used_shrinkage, &scat.used_shrinkage);
                        prop_assert_eq!(mono.ranking.len(), scat.ranking.len());
                        for (x, y) in mono.ranking.iter().zip(&scat.ranking) {
                            prop_assert_eq!(x.index, y.index);
                            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                        }
                    }
                }
            }
        }

        /// Tentpole guardrail, sharded variant: per-shard pruned top-k,
        /// merged and truncated, equals the truncated monolithic ranking at
        /// `f64::to_bits` for shard counts 1/2/4 across all 3 algorithms ×
        /// 3 shrinkage modes × every k. Both the in-process scatter
        /// (`route_topk`) and the federated composition
        /// (`route_shard_topk` per shard + merge) are checked.
        #[test]
        fn sharded_topk_matches_monolithic_truncation(
            seed in 0u64..1_000_000,
            db_sizes in proptest::collection::vec(100.0f64..60_000.0, 1..8),
        ) {
            let entries: Vec<CatalogEntry> = db_sizes
                .iter()
                .enumerate()
                .map(|(i, &db_size)| {
                    let words: Vec<(TermId, u32)> = (0..4)
                        .map(|w| (w + 1, ((i as u32 + 2) * (w + 5)) % 80))
                        .filter(|&(_, sdf)| sdf > 0)
                        .collect();
                    let unshrunk = sampled_summary(db_size, 100, &words);
                    let shrunk = shrunk_for(&unshrunk, &[(2, 0.05), (3, 0.02)]);
                    CatalogEntry { name: format!("db{i}"), unshrunk, shrunk }
                })
                .collect();
            let catalog = Arc::new(Catalog::build(entries));
            let global = sampled_summary(
                130_000.0,
                900,
                &[(1, 280), (2, 230), (3, 90), (4, 50)],
            );
            let algorithms: [Arc<dyn SelectionAlgorithm + Send + Sync>; 3] = [
                Arc::new(BGloss),
                Arc::new(Cori::default()),
                Arc::new(Lm::new(0.5, &global)),
            ];
            let queries: Vec<Vec<TermId>> = vec![vec![1, 3], vec![2, 4, 9], vec![1], vec![]];
            for algorithm in algorithms {
                for mode in [
                    ShrinkageMode::Adaptive,
                    ShrinkageMode::Always,
                    ShrinkageMode::Never,
                ] {
                    let config = AdaptiveConfig { mode, ..Default::default() };
                    let full = Arc::new(SelectionEngine::new(
                        Arc::clone(&catalog),
                        Arc::clone(&algorithm),
                        config,
                        DEFAULT_CACHE_CAPACITY,
                    ));
                    for shards in [1usize, 2, 4] {
                        let set = Arc::new(
                            ShardSet::build(
                                &catalog,
                                ShardPlan::contiguous(catalog.len(), shards),
                            )
                            .unwrap(),
                        );
                        let sharded =
                            ShardedEngine::new(Arc::clone(&full), Arc::clone(&set), 2);
                        for (qi, query) in queries.iter().enumerate() {
                            let mono = full.route(query, &mut db_rng(seed, qi));
                            for k in 1..=catalog.len() + 1 {
                                let want = &mono.ranking[..k.min(mono.ranking.len())];
                                let scat = sharded.route_topk(query, k, &mut db_rng(seed, qi));
                                prop_assert_eq!(&scat.used_shrinkage, &mono.used_shrinkage);
                                prop_assert_eq!(scat.ranking.len(), want.len());
                                for (x, y) in scat.ranking.iter().zip(want) {
                                    prop_assert_eq!(x.index, y.index);
                                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                                }
                                // Federated composition: backends each
                                // return their shard-local top k.
                                let partials: Vec<Vec<RankedDatabase>> = (0..shards)
                                    .map(|s| {
                                        sharded
                                            .route_shard_topk(
                                                query,
                                                k,
                                                &mut db_rng(seed, qi),
                                                s,
                                                &mut RouteScratch::default(),
                                            )
                                            .ranking
                                    })
                                    .collect();
                                let mut merged = merge_rankings(&partials);
                                merged.truncate(k);
                                prop_assert_eq!(merged.len(), want.len());
                                for (x, y) in merged.iter().zip(want) {
                                    prop_assert_eq!(x.index, y.index);
                                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
