//! Property-based tests for the text-indexing substrate: the tokenizer,
//! the Porter stemmer, and the inverted index must uphold their invariants
//! for arbitrary inputs.

use proptest::prelude::*;
use textindex::{porter_stem, tokenize, Document, InvertedIndex, SearchEngine, TermId};

proptest! {
    /// The stemmer must never panic and never grow a word by more than the
    /// single `e` its step-1b cleanup can append.
    #[test]
    fn stemmer_never_panics_or_grows(word in "[a-z]{0,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len() + 1);
    }

    /// Arbitrary (even non-ASCII) input must not panic the stemmer.
    #[test]
    fn stemmer_handles_arbitrary_strings(word in "\\PC{0,24}") {
        let _ = porter_stem(&word);
    }

    /// Stemming a stem must not panic and keeps the output ASCII when the
    /// input was ASCII lowercase.
    #[test]
    fn stemmer_output_stays_ascii(word in "[a-z]{3,16}") {
        let once = porter_stem(&word);
        prop_assert!(once.bytes().all(|b| b.is_ascii_lowercase()));
        let twice = porter_stem(&once);
        prop_assert!(twice.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Tokens are lowercase, non-empty, at least two characters, and free
    /// of separator characters.
    #[test]
    fn tokenizer_invariants(text in "\\PC{0,200}") {
        for token in tokenize(&text) {
            prop_assert!(token.chars().count() >= 2);
            prop_assert!(token.chars().all(|c| c.is_alphanumeric()));
            prop_assert_eq!(token.clone(), token.to_lowercase());
        }
    }

    /// Tokenization is insensitive to surrounding whitespace.
    #[test]
    fn tokenizer_ignores_padding(text in "[a-z ]{0,80}") {
        let padded = format!("  \t{text} \n ");
        prop_assert_eq!(tokenize(&text), tokenize(&padded));
    }
}

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<TermId>>> {
    prop::collection::vec(prop::collection::vec(0u32..50, 0..30), 1..20)
}

proptest! {
    /// Document frequency of any term never exceeds the document count, and
    /// collection frequency never falls below document frequency.
    #[test]
    fn index_frequency_invariants(docs in docs_strategy()) {
        let documents: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t.clone()))
            .collect();
        let index = InvertedIndex::build(&documents);
        prop_assert_eq!(index.num_docs(), documents.len());
        for (term, list) in index.terms() {
            let df = list.document_frequency();
            prop_assert!(df >= 1);
            prop_assert!(df <= index.num_docs());
            prop_assert!(list.collection_frequency >= df as u64);
            prop_assert_eq!(index.document_frequency(term), df);
        }
        let total: u64 = documents.iter().map(|d| d.len() as u64).sum();
        prop_assert_eq!(index.total_tokens(), total);
    }

    /// A conjunctive search returns exactly the documents containing every
    /// query term, and the reported match count equals that set's size.
    #[test]
    fn search_matches_are_exact(docs in docs_strategy(), query in prop::collection::vec(0u32..50, 1..4)) {
        let documents: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, t)| Document::from_tokens(i as u32, t.clone()))
            .collect();
        let index = InvertedIndex::build(&documents);
        let engine = SearchEngine::new(&index);
        let mut q = query.clone();
        q.sort_unstable();
        q.dedup();
        let result = engine.search(&q, documents.len());
        let expected: Vec<u32> = documents
            .iter()
            .filter(|d| q.iter().all(|&t| d.contains_term(t)))
            .map(|d| d.id)
            .collect();
        prop_assert_eq!(result.total_matches, expected.len());
        let mut returned = result.doc_ids.clone();
        returned.sort_unstable();
        prop_assert_eq!(returned, expected);
    }
}
