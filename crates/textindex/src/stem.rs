//! The Porter stemming algorithm (M.F. Porter, 1980).
//!
//! The paper reports all database-selection results with stemming applied to
//! both query and document words (Section 6.2), so the content summaries in
//! this reproduction are built over stemmed tokens. This is a faithful port
//! of Porter's reference implementation: the same five steps, the same
//! measure-based conditions, and the same rule ordering.
//!
//! Words containing non-ASCII-alphabetic characters are returned unchanged —
//! the algorithm is defined for English letters only.

/// Stem a single lowercase word with the Porter algorithm.
///
/// ```
/// use textindex::porter_stem;
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("hypertension"), "hypertens");
/// assert_eq!(porter_stem("agreed"), "agre");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len() - 1,
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    s.b.truncate(s.k + 1);
    // The buffer is mutated in place and always stays ASCII.
    String::from_utf8(s.b).expect("porter stemmer output is ASCII")
}

struct Stemmer {
    /// Word buffer; only `b[0..=k]` is live.
    b: Vec<u8>,
    /// Index of the last live byte.
    k: usize,
}

impl Stemmer {
    /// Is `b[i]` a consonant? `y` is a consonant when it follows a vowel
    /// position (i.e., at index 0 or after a consonant).
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => i == 0 || !self.is_consonant(i - 1),
            _ => true,
        }
    }

    /// Porter's *measure* `m` of the stem `b[0..=j]`: the number of
    /// vowel-consonant sequences `(VC){m}`.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        loop {
            if i > j {
                return n;
            }
            if !self.is_consonant(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i > j {
                    return n;
                }
                if self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i > j {
                    return n;
                }
                if !self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Does the stem `b[0..=j]` contain a vowel?
    fn has_vowel(&self, j: usize) -> bool {
        (0..=j).any(|i| !self.is_consonant(i))
    }

    /// Does `b[0..=j]` end with a double consonant?
    fn double_consonant(&self, j: usize) -> bool {
        j >= 1 && self.b[j] == self.b[j - 1] && self.is_consonant(j)
    }

    /// Does `b[0..=i]` end consonant-vowel-consonant, where the final
    /// consonant is not `w`, `x` or `y`? Used to detect "short" stems.
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// Does the live word end with `suffix`? On success sets `j` implicitly:
    /// callers use `self.k - suffix.len()` as the stem end.
    fn ends(&self, suffix: &[u8]) -> bool {
        let len = suffix.len();
        if len > self.k + 1 {
            return false;
        }
        &self.b[self.k + 1 - len..=self.k] == suffix
    }

    /// Replace the current suffix of length `old_len` with `new`.
    fn set_to(&mut self, old_len: usize, new: &[u8]) {
        let start = self.k + 1 - old_len;
        self.b.truncate(start);
        self.b.extend_from_slice(new);
        self.k = start + new.len() - 1;
        debug_assert!(self.k < self.b.len());
    }

    /// If the word ends with `suffix` and the remaining stem has `m > min_m`,
    /// replace the suffix with `new` and report `true` for "rule fired or
    /// suffix matched" (Porter's rules stop at the first matching suffix
    /// even when the measure condition fails). A suffix spanning the whole
    /// word leaves an empty stem with measure 0, so the rule never fires.
    fn replace_if_m_gt(&mut self, suffix: &[u8], new: &[u8], min_m: usize) -> bool {
        if self.ends(suffix) {
            if self.k + 1 > suffix.len() {
                let j = self.k - suffix.len();
                if self.measure(j) > min_m {
                    self.set_to(suffix.len(), new);
                }
            }
            true
        } else {
            false
        }
    }

    /// Step 1a (plurals) and 1b (-ed, -ing).
    fn step1ab(&mut self) {
        if self.b[self.k] == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.set_to(3, b"i");
            } else if self.b[self.k - 1] != b's' {
                self.k -= 1;
            }
        }
        if self.ends(b"eed") {
            if self.k >= 3 && self.measure(self.k - 3) > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") && self.k >= 2 && self.has_vowel(self.k - 2))
            || (self.ends(b"ing") && self.k >= 3 && self.has_vowel(self.k - 3))
        {
            self.k -= if self.ends(b"ed") { 2 } else { 3 };
            self.b.truncate(self.k + 1);
            if self.ends(b"at") || self.ends(b"bl") || self.ends(b"iz") {
                self.b.push(b'e');
                self.k += 1;
            } else if self.double_consonant(self.k) && !matches!(self.b[self.k], b'l' | b's' | b'z')
            {
                self.k -= 1;
            } else if self.measure(self.k) == 1 && self.cvc(self.k) {
                self.b.truncate(self.k + 1);
                self.b.push(b'e');
                self.k += 1;
            }
        }
        self.b.truncate(self.k + 1);
    }

    /// Step 1c: terminal `y` becomes `i` when the stem contains a vowel.
    fn step1c(&mut self) {
        if self.b[self.k] == b'y' && self.k >= 1 && self.has_vowel(self.k - 1) {
            self.b[self.k] = b'i';
        }
    }

    /// Step 2: map double suffixes to single ones (`-ization` → `-ize`, ...).
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        let rules: &[(&[u8], &[u8])] = match self.b[self.k - 1] {
            b'a' => &[(b"ational", b"ate"), (b"tional", b"tion")],
            b'c' => &[(b"enci", b"ence"), (b"anci", b"ance")],
            b'e' => &[(b"izer", b"ize")],
            b'l' => &[
                (b"bli", b"ble"),
                (b"alli", b"al"),
                (b"entli", b"ent"),
                (b"eli", b"e"),
                (b"ousli", b"ous"),
            ],
            b'o' => &[(b"ization", b"ize"), (b"ation", b"ate"), (b"ator", b"ate")],
            b's' => &[
                (b"alism", b"al"),
                (b"iveness", b"ive"),
                (b"fulness", b"ful"),
                (b"ousness", b"ous"),
            ],
            b't' => &[(b"aliti", b"al"), (b"iviti", b"ive"), (b"biliti", b"ble")],
            b'g' => &[(b"logi", b"log")],
            _ => return,
        };
        for &(suffix, new) in rules {
            if self.replace_if_m_gt(suffix, new, 0) {
                return;
            }
        }
    }

    /// Step 3: `-icate`, `-ative`, `-alize`, `-iciti`, `-ical`, `-ful`, `-ness`.
    fn step3(&mut self) {
        let rules: &[(&[u8], &[u8])] = match self.b[self.k] {
            b'e' => &[(b"icate", b"ic"), (b"ative", b""), (b"alize", b"al")],
            b'i' => &[(b"iciti", b"ic")],
            b'l' => &[(b"ical", b"ic"), (b"ful", b"")],
            b's' => &[(b"ness", b"")],
            _ => return,
        };
        for &(suffix, new) in rules {
            if self.replace_if_m_gt(suffix, new, 0) {
                return;
            }
        }
    }

    /// Step 4: drop residual suffixes when the measure of the stem exceeds 1.
    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let rules: &[&[u8]] = match self.b[self.k - 1] {
            b'a' => &[b"al"],
            b'c' => &[b"ance", b"ence"],
            b'e' => &[b"er"],
            b'i' => &[b"ic"],
            b'l' => &[b"able", b"ible"],
            b'n' => &[b"ant", b"ement", b"ment", b"ent"],
            b'o' => &[b"ou"], // `-ion` handled below with its t/s guard
            b's' => &[b"ism"],
            b't' => &[b"ate", b"iti"],
            b'u' => &[b"ous"],
            b'v' => &[b"ive"],
            b'z' => &[b"ize"],
            _ => return,
        };
        if self.b[self.k - 1] == b'o' && self.ends(b"ion") {
            if self.k >= 3 {
                let j = self.k - 3;
                if matches!(self.b[j], b's' | b't') && self.measure(j) > 1 {
                    self.k = j;
                    self.b.truncate(self.k + 1);
                }
            }
            return;
        }
        for &suffix in rules {
            if self.ends(suffix) {
                if self.k + 1 > suffix.len() {
                    let j = self.k - suffix.len();
                    if self.measure(j) > 1 {
                        self.k = j;
                        self.b.truncate(self.k + 1);
                    }
                }
                return;
            }
        }
    }

    /// Step 5: remove a final `-e` and reduce `-ll` on long stems.
    fn step5(&mut self) {
        if self.k >= 1 && self.b[self.k] == b'e' {
            let m = self.measure(self.k - 1);
            if m > 1 || (m == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        if self.b[self.k] == b'l' && self.double_consonant(self.k) && self.measure(self.k - 1) > 1 {
            self.k -= 1;
        }
        self.b.truncate(self.k + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pairs: &[(&str, &str)]) {
        for &(input, expected) in pairs {
            assert_eq!(porter_stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn step1a_plurals() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn step1b_ed_ing() {
        check(&[
            ("feed", "feed"),
            // Step 1b alone yields "agree"; the final -e then falls to step
            // 5a, giving the canonical full-algorithm output "agre" (the
            // same stem "agree" itself maps to).
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn step1c_y_to_i() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn multi_step_words() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("electrical", "electr"),
            ("electricity", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("adjustment", "adjust"),
            ("consistency", "consist"),
            ("dependent", "depend"),
            ("hypertension", "hypertens"),
            ("classification", "classif"),
            ("databases", "databas"),
        ]);
    }

    #[test]
    fn short_words_unchanged() {
        check(&[("a", "a"), ("at", "at"), ("is", "is"), ("be", "be")]);
    }

    #[test]
    fn non_ascii_unchanged() {
        assert_eq!(porter_stem("naïve"), "naïve");
        assert_eq!(porter_stem("word2vec"), "word2vec");
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in [
            "computation",
            "running",
            "databases",
            "selection",
            "probabilities",
        ] {
            let once = porter_stem(w);
            let twice = porter_stem(&once);
            // Porter is not idempotent in general, but must never panic and
            // must keep output ASCII-lowercase for lowercase input.
            assert!(twice
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
        }
    }
}
