//! Lexical analysis: splitting raw text into lowercase word tokens.
//!
//! The tokenizer mirrors what `lynx --dump` + Lucene's `StandardAnalyzer`
//! produced in the paper's pipeline: Unicode-alphanumeric runs, lowercased.
//! Purely numeric tokens are kept (database selection queries never contain
//! them in our workloads, but real documents do) while single-character
//! tokens are dropped because they are noise for content summaries.

/// Minimum length of a token that is kept.
pub const MIN_TOKEN_LEN: usize = 2;

/// Split `text` into lowercase alphanumeric tokens.
///
/// Tokens shorter than [`MIN_TOKEN_LEN`] characters are discarded.
///
/// ```
/// let toks = textindex::tokenize("Blood-pressure (hypertension) affects 25%!");
/// assert_eq!(toks, vec!["blood", "pressure", "hypertension", "affects", "25"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            push_token(&mut tokens, &mut current);
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, &mut current);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, current: &mut String) {
    if current.chars().count() >= MIN_TOKEN_LEN {
        tokens.push(std::mem::take(current));
    } else {
        current.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("heart-disease, and stroke."),
            vec!["heart", "disease", "and", "stroke"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(
            tokenize("PubMed HOSTS Citations"),
            vec!["pubmed", "hosts", "citations"]
        );
    }

    #[test]
    fn drops_single_characters() {
        assert_eq!(tokenize("a b cd e"), vec!["cd"]);
    }

    #[test]
    fn keeps_numbers() {
        assert_eq!(
            tokenize("trec 2004 results"),
            vec!["trec", "2004", "results"]
        );
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn unicode_is_handled() {
        assert_eq!(tokenize("naïve café"), vec!["naïve", "café"]);
    }
}
