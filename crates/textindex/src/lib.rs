//! `textindex` — an in-memory full-text search engine.
//!
//! This crate is the substrate that plays the role Jakarta Lucene played in
//! the SIGMOD 2004 paper *"When one Sample is not Enough: Improving Text
//! Database Selection Using Shrinkage"*: it indexes the documents of each
//! text database and answers keyword queries with a ranked result list plus
//! the **total number of matching documents** (the "matches" count that both
//! the sampling algorithms and the frequency-estimation step rely on).
//!
//! The crate deliberately exposes two views of a database:
//!
//! * [`InvertedIndex`] / [`SearchEngine`] — the full, cooperative view used
//!   to build *perfect* content summaries for evaluation, and
//! * the [`RemoteDatabase`] trait — the restricted, "uncooperative web
//!   database" interface that only supports querying and fetching returned
//!   documents, which is all the samplers in the `sampling` crate may use.
//!
//! All text is interned through a shared [`TermDict`]; documents, postings,
//! and everything downstream (content summaries, shrinkage EM) operate on
//! dense `u32` [`TermId`]s for memory efficiency and fast hashing.
//!
//! # Example
//!
//! ```
//! use textindex::{Analyzer, Document, InvertedIndex, SearchEngine, TermDict};
//!
//! let analyzer = Analyzer::english();
//! let mut dict = TermDict::new();
//! let docs = vec![
//!     Document::from_text(0, "Hypertension is a risk factor for heart disease",
//!                         &analyzer, &mut dict),
//!     Document::from_text(1, "The algorithm sorts integers in linear time",
//!                         &analyzer, &mut dict),
//! ];
//! let index = InvertedIndex::build(&docs);
//! let engine = SearchEngine::new(&index);
//! let term = dict.lookup("hypertens").unwrap();
//! let result = engine.search(&[term], 10);
//! assert_eq!(result.total_matches, 1);
//! assert_eq!(result.doc_ids, vec![0]);
//! ```

pub mod analyzer;
pub mod dict;
pub mod document;
pub mod index;
pub mod remote;
pub mod search;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use analyzer::Analyzer;
pub use dict::{TermDict, TermId};
pub use document::{DocId, Document};
pub use index::InvertedIndex;
pub use remote::{IndexedDatabase, RemoteDatabase, SearchOutcome};
pub use search::{RankingModel, SearchEngine, SearchResult};
pub use stem::porter_stem;
pub use tokenize::tokenize;
