//! Term interning: a bidirectional `String` ↔ [`TermId`] dictionary.
//!
//! Every testbed shares one `TermDict`. Documents, posting lists, content
//! summaries, and the shrinkage EM all operate on dense `u32` term ids,
//! which keeps a multi-hundred-thousand-document corpus in a few hundred
//! megabytes and makes the hot loops integer-keyed. Strings appear only at
//! the edges (text analysis and result display).

use std::collections::HashMap;

/// Dense identifier of an interned term.
pub type TermId = u32;

/// An append-only string interner.
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    terms: Vec<String>,
    by_name: HashMap<String, TermId>,
}

impl TermDict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_name.get(term) {
            return id;
        }
        let id = TermId::try_from(self.terms.len()).expect("term dictionary overflow");
        self.terms.push(term.to_string());
        self.by_name.insert(term.to_string(), id);
        id
    }

    /// Look up an already-interned term.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.by_name.get(term).copied()
    }

    /// The string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Intern every token of an analyzed text.
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<TermId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern("heart");
        let b = d.intern("heart");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_reversible() {
        let mut d = TermDict::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.term(a), "alpha");
        assert_eq!(d.term(b), "beta");
    }

    #[test]
    fn lookup_misses_return_none() {
        let mut d = TermDict::new();
        d.intern("x");
        assert_eq!(d.lookup("x"), Some(0));
        assert_eq!(d.lookup("y"), None);
    }

    #[test]
    fn intern_all_maps_token_vectors() {
        let mut d = TermDict::new();
        let ids = d.intern_all(&["a".into(), "b".into(), "a".into()]);
        assert_eq!(ids, vec![0, 1, 0]);
        assert!(!d.is_empty());
    }
}
