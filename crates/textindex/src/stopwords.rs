//! A standard English stopword list.
//!
//! The paper reports results with stopword elimination applied to queries and
//! documents (Section 6.2). This list is the classic SMART-derived set of
//! high-frequency function words, trimmed to the ~120 entries that actually
//! occur in keyword queries; stopwords never carry topical signal, so their
//! absence from content summaries is irrelevant for database selection.

use std::collections::HashSet;
use std::sync::OnceLock;

/// The raw stopword list (lowercase, unstemmed surface forms).
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Is `word` (lowercase) a stopword?
///
/// ```
/// assert!(textindex::stopwords::is_stopword("the"));
/// assert!(!textindex::stopwords::is_stopword("hypertension"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
        .contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "of", "is", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["hemophilia", "database", "algorithm", "soccer"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn list_is_lowercase_and_unique() {
        let mut seen = HashSet::new();
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase());
            assert!(seen.insert(*w), "duplicate stopword {w}");
        }
    }
}
