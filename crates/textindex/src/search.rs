//! Ranked keyword search over an [`InvertedIndex`].
//!
//! Queries are conjunctive (all terms must match), mirroring the boolean
//! retrieval model the sampling algorithms in the paper assume: a query's
//! "number of matches" is the number of documents containing every query
//! word, and the engine returns the top-ranked matches.

use std::collections::HashMap;

use crate::dict::TermId;
use crate::document::DocId;
use crate::index::InvertedIndex;

/// Result of one search: the total match count plus the ranked top documents.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Number of documents matching *all* query terms. This is the "matches"
    /// figure real search interfaces report and that frequency estimation
    /// (Appendix A) and sample-resample size estimation rely on.
    pub total_matches: usize,
    /// Up to `k` matching document ids, best-ranked first.
    pub doc_ids: Vec<DocId>,
    /// Retrieval scores aligned with `doc_ids` (needed by results merging).
    pub scores: Vec<f64>,
}

/// How matched documents are scored.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RankingModel {
    /// `Σ tf(w,d) · ln(1 + N/df(w))` — simple, length-insensitive.
    #[default]
    TfIdf,
    /// Okapi BM25 with the usual `k1`/`b` saturation and length
    /// normalization.
    Bm25 {
        /// Term-frequency saturation (typical: 1.2).
        k1: f64,
        /// Length-normalization strength (typical: 0.75).
        b: f64,
    },
}

impl RankingModel {
    /// The standard BM25 parameterization.
    pub fn bm25() -> Self {
        RankingModel::Bm25 { k1: 1.2, b: 0.75 }
    }
}

/// A ranked search engine over a borrowed index.
#[derive(Debug, Clone, Copy)]
pub struct SearchEngine<'a> {
    index: &'a InvertedIndex,
    ranking: RankingModel,
}

impl<'a> SearchEngine<'a> {
    /// Wrap `index` in a tf·idf search engine.
    pub fn new(index: &'a InvertedIndex) -> Self {
        SearchEngine {
            index,
            ranking: RankingModel::TfIdf,
        }
    }

    /// Wrap `index` with an explicit ranking model.
    pub fn with_ranking(index: &'a InvertedIndex, ranking: RankingModel) -> Self {
        SearchEngine { index, ranking }
    }

    /// The underlying index.
    pub fn index(&self) -> &'a InvertedIndex {
        self.index
    }

    /// Evaluate a conjunctive query and return the top-`k` matches, ties
    /// broken by ascending document id for determinism.
    pub fn search(&self, terms: &[TermId], k: usize) -> SearchResult {
        let matches = self.index.conjunctive_match(terms);
        let total_matches = matches.len();
        if matches.is_empty() || k == 0 {
            return SearchResult {
                total_matches,
                doc_ids: Vec::new(),
                scores: Vec::new(),
            };
        }
        let n = self.index.num_docs() as f64;
        let avg_len = if n > 0.0 {
            self.index.total_tokens() as f64 / n
        } else {
            1.0
        };
        let mut scores: HashMap<DocId, f64> = matches.iter().map(|&d| (d, 0.0)).collect();
        for &term in terms {
            let Some(list) = self.index.posting_list(term) else {
                continue;
            };
            let df = list.document_frequency() as f64;
            for &(doc, tf) in &list.postings {
                let Some(score) = scores.get_mut(&doc) else {
                    continue;
                };
                let tf = f64::from(tf);
                *score += match self.ranking {
                    RankingModel::TfIdf => tf * (1.0 + n / df).ln(),
                    RankingModel::Bm25 { k1, b } => {
                        // The non-negative "plus" idf variant, standard in
                        // practice (plain Robertson idf can go negative for
                        // very common terms).
                        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                        let doc_len = f64::from(self.index.doc_length(doc));
                        let norm = k1 * (1.0 - b + b * doc_len / avg_len);
                        idf * tf * (k1 + 1.0) / (tf + norm)
                    }
                };
            }
        }
        let mut ranked: Vec<(DocId, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        let (doc_ids, scores) = ranked.into_iter().unzip();
        SearchResult {
            total_matches,
            doc_ids,
            scores,
        }
    }

    /// Evaluate a *disjunctive* (OR) query: rank every document containing
    /// at least one query term. This is how result lists are produced when
    /// a metasearcher forwards a query — demanding all words of a long
    /// query in one document (the conjunctive `search`) would return almost
    /// nothing.
    pub fn search_disjunctive(&self, terms: &[TermId], k: usize) -> SearchResult {
        let n = self.index.num_docs() as f64;
        let avg_len = if n > 0.0 {
            self.index.total_tokens() as f64 / n
        } else {
            1.0
        };
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        let mut distinct_terms: Vec<TermId> = terms.to_vec();
        distinct_terms.sort_unstable();
        distinct_terms.dedup();
        for &term in &distinct_terms {
            let Some(list) = self.index.posting_list(term) else {
                continue;
            };
            let df = list.document_frequency() as f64;
            for &(doc, tf) in &list.postings {
                let tf = f64::from(tf);
                let contribution = match self.ranking {
                    RankingModel::TfIdf => tf * (1.0 + n / df).ln(),
                    RankingModel::Bm25 { k1, b } => {
                        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                        let doc_len = f64::from(self.index.doc_length(doc));
                        let norm = k1 * (1.0 - b + b * doc_len / avg_len);
                        idf * tf * (k1 + 1.0) / (tf + norm)
                    }
                };
                *scores.entry(doc).or_insert(0.0) += contribution;
            }
        }
        let total_matches = scores.len();
        let mut ranked: Vec<(DocId, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        let (doc_ids, scores) = ranked.into_iter().unzip();
        SearchResult {
            total_matches,
            doc_ids,
            scores,
        }
    }

    /// Number of documents matching the single word `term` — the cheapest
    /// query form, used heavily by the samplers.
    pub fn match_count(&self, term: TermId) -> usize {
        self.index.document_frequency(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    // Term ids: 0=heart 1=blood 2=pressure 3=soccer
    fn doc(id: DocId, terms: &[TermId]) -> Document {
        Document::from_tokens(id, terms.to_vec())
    }

    fn engine_fixture() -> InvertedIndex {
        InvertedIndex::build(&[
            doc(0, &[0, 1]),
            doc(1, &[0, 0, 0, 1]),
            doc(2, &[1, 2]),
            doc(3, &[3]),
        ])
    }

    #[test]
    fn total_matches_is_conjunctive_count() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let r = engine.search(&[0, 1], 10);
        assert_eq!(r.total_matches, 2);
    }

    #[test]
    fn ranking_prefers_higher_tf() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let r = engine.search(&[0], 10);
        // Doc 1 has tf=3 for term 0, doc 0 has tf=1.
        assert_eq!(r.doc_ids, vec![1, 0]);
    }

    #[test]
    fn k_limits_results_but_not_match_count() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let r = engine.search(&[1], 1);
        assert_eq!(r.total_matches, 3);
        assert_eq!(r.doc_ids.len(), 1);
    }

    #[test]
    fn no_match_returns_empty() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        let r = engine.search(&[42], 5);
        assert_eq!(r.total_matches, 0);
        assert!(r.doc_ids.is_empty());
    }

    #[test]
    fn tie_broken_by_doc_id() {
        let idx = InvertedIndex::build(&[doc(0, &[7]), doc(1, &[7])]);
        let engine = SearchEngine::new(&idx);
        assert_eq!(engine.search(&[7], 10).doc_ids, vec![0, 1]);
    }

    #[test]
    fn match_count_shortcut() {
        let idx = engine_fixture();
        let engine = SearchEngine::new(&idx);
        assert_eq!(engine.match_count(1), 3);
        assert_eq!(engine.match_count(42), 0);
    }
}

#[cfg(test)]
mod bm25_tests {
    use super::*;
    use crate::document::Document;

    fn doc(id: DocId, terms: &[TermId]) -> Document {
        Document::from_tokens(id, terms.to_vec())
    }

    #[test]
    fn bm25_saturates_term_frequency() {
        // Doc 1 has tf=12 for term 0, doc 0 has tf=3; under tf·idf doc 1
        // scores 4× doc 0, under BM25 far less than 4×.
        let mut d0 = vec![0; 3];
        d0.extend([1, 2, 3]);
        let mut d1 = vec![0; 12];
        d1.extend([4, 5, 6]); // keep lengths comparable-ish
        let idx = InvertedIndex::build(&[doc(0, &d0), doc(1, &d1)]);
        let tfidf = SearchEngine::new(&idx).search(&[0], 2);
        let bm25 = SearchEngine::with_ranking(&idx, RankingModel::bm25()).search(&[0], 2);
        let tfidf_ratio = tfidf.scores[0] / tfidf.scores[1];
        let bm25_ratio = bm25.scores[0] / bm25.scores[1];
        assert!(
            bm25_ratio < tfidf_ratio,
            "bm25 {bm25_ratio} vs tfidf {tfidf_ratio}"
        );
        assert!(bm25_ratio > 1.0, "more occurrences still rank higher");
    }

    #[test]
    fn bm25_penalizes_long_documents() {
        // Same tf for term 0, but doc 1 is much longer.
        let mut long = vec![0; 2];
        long.extend(std::iter::repeat_n(9, 200));
        let short: Vec<TermId> = vec![0, 0, 1, 2];
        let idx = InvertedIndex::build(&[doc(0, &short), doc(1, &long)]);
        let result = SearchEngine::with_ranking(&idx, RankingModel::bm25()).search(&[0], 2);
        assert_eq!(result.doc_ids[0], 0, "short document wins at equal tf");
        assert!(result.scores[0] > result.scores[1]);
    }

    #[test]
    fn bm25_scores_are_non_negative() {
        // Term 0 appears in every document — the "plus" idf keeps scores
        // positive where plain Robertson idf would go negative.
        let docs: Vec<Document> = (0..5).map(|i| doc(i, &[0, i + 10])).collect();
        let idx = InvertedIndex::build(&docs);
        let result = SearchEngine::with_ranking(&idx, RankingModel::bm25()).search(&[0], 5);
        assert_eq!(result.total_matches, 5);
        assert!(result.scores.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn match_set_is_ranking_independent() {
        let docs: Vec<Document> = (0..20).map(|i| doc(i, &[i % 3, i % 5, 7])).collect();
        let idx = InvertedIndex::build(&docs);
        let a = SearchEngine::new(&idx).search(&[7, 0], 20);
        let b = SearchEngine::with_ranking(&idx, RankingModel::bm25()).search(&[7, 0], 20);
        assert_eq!(a.total_matches, b.total_matches);
        let mut ia = a.doc_ids.clone();
        let mut ib = b.doc_ids.clone();
        ia.sort_unstable();
        ib.sort_unstable();
        assert_eq!(ia, ib);
    }
}

#[cfg(test)]
mod disjunctive_tests {
    use super::*;
    use crate::document::Document;

    fn doc(id: DocId, terms: &[TermId]) -> Document {
        Document::from_tokens(id, terms.to_vec())
    }

    #[test]
    fn disjunctive_matches_any_term() {
        let idx = InvertedIndex::build(&[doc(0, &[1, 2]), doc(1, &[2, 3]), doc(2, &[4])]);
        let engine = SearchEngine::new(&idx);
        let r = engine.search_disjunctive(&[1, 3], 10);
        assert_eq!(r.total_matches, 2, "docs 0 and 1 contain at least one term");
        // Conjunctive would find nothing.
        assert_eq!(engine.search(&[1, 3], 10).total_matches, 0);
    }

    #[test]
    fn documents_matching_more_terms_rank_higher() {
        let idx = InvertedIndex::build(&[doc(0, &[1, 9]), doc(1, &[1, 2, 3])]);
        let engine = SearchEngine::new(&idx);
        let r = engine.search_disjunctive(&[1, 2, 3], 10);
        assert_eq!(r.doc_ids[0], 1);
        assert!(r.scores[0] > r.scores[1]);
    }

    #[test]
    fn duplicate_query_terms_do_not_double_count() {
        let idx = InvertedIndex::build(&[doc(0, &[1]), doc(1, &[1])]);
        let engine = SearchEngine::new(&idx);
        let once = engine.search_disjunctive(&[1], 10);
        let twice = engine.search_disjunctive(&[1, 1], 10);
        assert_eq!(once.scores, twice.scores);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let idx = InvertedIndex::build(&[doc(0, &[1])]);
        let engine = SearchEngine::new(&idx);
        let r = engine.search_disjunctive(&[], 10);
        assert_eq!(r.total_matches, 0);
    }
}
