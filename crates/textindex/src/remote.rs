//! The "uncooperative database" interface.
//!
//! A hidden-web database exposes only a search box: callers can submit a
//! keyword query, observe the reported number of matches, and download the
//! top results. They can **not** enumerate documents, read the vocabulary, or
//! ask for the collection size. [`RemoteDatabase`] captures exactly that
//! contract; the samplers in the `sampling` crate are written against this
//! trait so the type system guarantees they never peek at hidden state.
//!
//! [`IndexedDatabase`] is the concrete in-process implementation backed by an
//! [`InvertedIndex`]; evaluation code uses its *inherent* methods (which do
//! expose everything) to compute perfect content summaries.

use crate::dict::TermId;
use crate::document::{DocId, Document};
use crate::index::InvertedIndex;
use crate::search::{SearchEngine, SearchResult};

/// Outcome of a remote query: the advertised match count and the returned
/// top documents.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Total number of documents matching the query, as a real search
    /// interface would report ("1–10 of 15,158 results").
    pub total_matches: usize,
    /// Ranked ids of the returned documents.
    pub doc_ids: Vec<DocId>,
    /// Retrieval scores aligned with `doc_ids`, as search interfaces often
    /// expose (consumed by results merging).
    pub scores: Vec<f64>,
}

/// The restricted query interface of an uncooperative text database.
pub trait RemoteDatabase {
    /// Human-readable database name.
    fn name(&self) -> &str;

    /// Submit a conjunctive keyword query; receive up to `max_results`
    /// top-ranked documents plus the total match count.
    fn query(&self, terms: &[TermId], max_results: usize) -> SearchOutcome;

    /// Submit a *disjunctive* (best-match) query: documents matching any
    /// query term, best first — the form a metasearcher forwards user
    /// queries in.
    fn query_any(&self, terms: &[TermId], max_results: usize) -> SearchOutcome;

    /// Download a document that a previous query returned.
    fn fetch(&self, id: DocId) -> Option<&Document>;
}

impl<T: RemoteDatabase + ?Sized> RemoteDatabase for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn query(&self, terms: &[TermId], max_results: usize) -> SearchOutcome {
        (**self).query(terms, max_results)
    }

    fn query_any(&self, terms: &[TermId], max_results: usize) -> SearchOutcome {
        (**self).query_any(terms, max_results)
    }

    fn fetch(&self, id: DocId) -> Option<&Document> {
        (**self).fetch(id)
    }
}

/// An in-process text database: owned documents plus their inverted index.
#[derive(Debug, Clone)]
pub struct IndexedDatabase {
    name: String,
    documents: Vec<Document>,
    index: InvertedIndex,
}

impl IndexedDatabase {
    /// Index `documents` (ids must equal positions) under `name`.
    pub fn new(name: impl Into<String>, documents: Vec<Document>) -> Self {
        let index = InvertedIndex::build(&documents);
        IndexedDatabase {
            name: name.into(),
            documents,
            index,
        }
    }

    /// Full access to the index — for building *perfect* content summaries
    /// during evaluation, not for samplers.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Full access to the documents — evaluation only.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// True collection size `|D|` — evaluation only; samplers must estimate
    /// it via sample-resample.
    pub fn num_docs(&self) -> usize {
        self.documents.len()
    }
}

impl RemoteDatabase for IndexedDatabase {
    fn name(&self) -> &str {
        &self.name
    }

    fn query(&self, terms: &[TermId], max_results: usize) -> SearchOutcome {
        let SearchResult {
            total_matches,
            doc_ids,
            scores,
        } = SearchEngine::new(&self.index).search(terms, max_results);
        SearchOutcome {
            total_matches,
            doc_ids,
            scores,
        }
    }

    fn query_any(&self, terms: &[TermId], max_results: usize) -> SearchOutcome {
        let SearchResult {
            total_matches,
            doc_ids,
            scores,
        } = SearchEngine::new(&self.index).search_disjunctive(terms, max_results);
        SearchOutcome {
            total_matches,
            doc_ids,
            scores,
        }
    }

    fn fetch(&self, id: DocId) -> Option<&Document> {
        self.documents.get(id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Term ids: 0=heart 1=blood 2=soccer 3=goal 4=surgery
    fn db() -> IndexedDatabase {
        let docs = vec![
            Document::from_tokens(0, vec![0, 1]),
            Document::from_tokens(1, vec![2, 3]),
            Document::from_tokens(2, vec![0, 4]),
        ];
        IndexedDatabase::new("medline-like", docs)
    }

    #[test]
    fn query_reports_match_count_and_top_docs() {
        let db = db();
        let out = db.query(&[0], 1);
        assert_eq!(out.total_matches, 2);
        assert_eq!(out.doc_ids.len(), 1);
    }

    #[test]
    fn fetch_returns_documents_by_id() {
        let db = db();
        assert_eq!(db.fetch(1).unwrap().tokens[0], 2);
        assert!(db.fetch(99).is_none());
    }

    #[test]
    fn name_round_trips() {
        assert_eq!(db().name(), "medline-like");
    }

    #[test]
    fn trait_object_usable() {
        let db = db();
        let remote: &dyn RemoteDatabase = &db;
        assert_eq!(remote.query(&[3], 4).total_matches, 1);
    }
}
