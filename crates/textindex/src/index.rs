//! The inverted index: term id → postings (document id, term frequency).

use std::collections::HashMap;

use crate::dict::TermId;
use crate::document::{DocId, Document};

/// A posting list for one term, sorted by document id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    /// `(doc_id, term_frequency)` pairs, ascending by `doc_id`.
    pub postings: Vec<(DocId, u32)>,
    /// Total number of occurrences of the term across the collection.
    pub collection_frequency: u64,
}

impl PostingList {
    /// Number of documents containing the term.
    pub fn document_frequency(&self) -> usize {
        self.postings.len()
    }
}

/// An immutable in-memory inverted index over a document collection.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    terms: HashMap<TermId, PostingList>,
    doc_lengths: Vec<u32>,
    total_tokens: u64,
}

impl InvertedIndex {
    /// Build an index over `docs`.
    ///
    /// Document ids must equal each document's position in the slice; this is
    /// the invariant every database in the reproduction maintains, and it
    /// lets posting lists stay sorted without a sort pass.
    ///
    /// # Panics
    /// Panics if a document's `id` differs from its position.
    pub fn build(docs: &[Document]) -> Self {
        let mut terms: HashMap<TermId, PostingList> = HashMap::new();
        let mut doc_lengths = Vec::with_capacity(docs.len());
        let mut total_tokens = 0u64;
        let mut tf_scratch: HashMap<TermId, u32> = HashMap::new();
        for (pos, doc) in docs.iter().enumerate() {
            assert_eq!(doc.id as usize, pos, "document id must equal its position");
            doc_lengths.push(doc.len() as u32);
            total_tokens += doc.len() as u64;
            tf_scratch.clear();
            for &token in &doc.tokens {
                *tf_scratch.entry(token).or_insert(0) += 1;
            }
            for (term, tf) in tf_scratch.drain() {
                let list = terms.entry(term).or_default();
                list.postings.push((doc.id, tf));
                list.collection_frequency += u64::from(tf);
            }
        }
        InvertedIndex {
            terms,
            doc_lengths,
            total_tokens,
        }
    }

    /// Number of documents in the collection.
    pub fn num_docs(&self) -> usize {
        self.doc_lengths.len()
    }

    /// Total number of token occurrences in the collection.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over `(term, posting_list)` pairs in arbitrary order.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &PostingList)> {
        self.terms.iter().map(|(&t, p)| (t, p))
    }

    /// The posting list for `term`, if any document contains it.
    pub fn posting_list(&self, term: TermId) -> Option<&PostingList> {
        self.terms.get(&term)
    }

    /// Number of documents containing `term`.
    pub fn document_frequency(&self, term: TermId) -> usize {
        self.terms
            .get(&term)
            .map_or(0, PostingList::document_frequency)
    }

    /// Total occurrences of `term` in the collection.
    pub fn collection_frequency(&self, term: TermId) -> u64 {
        self.terms.get(&term).map_or(0, |p| p.collection_frequency)
    }

    /// Length (token count) of document `id`.
    pub fn doc_length(&self, id: DocId) -> u32 {
        self.doc_lengths[id as usize]
    }

    /// Ids of documents containing *all* of `terms` (conjunctive match),
    /// ascending. An empty term list matches nothing.
    pub fn conjunctive_match(&self, terms: &[TermId]) -> Vec<DocId> {
        let mut lists: Vec<&PostingList> = Vec::with_capacity(terms.len());
        for &term in terms {
            match self.terms.get(&term) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        if lists.is_empty() {
            return Vec::new();
        }
        // Intersect starting from the rarest term.
        lists.sort_by_key(|l| l.postings.len());
        let mut result: Vec<DocId> = lists[0].postings.iter().map(|&(d, _)| d).collect();
        for list in &lists[1..] {
            let mut keep = Vec::with_capacity(result.len().min(list.postings.len()));
            let mut it = list.postings.iter().peekable();
            for &doc in &result {
                while let Some(&&(d, _)) = it.peek() {
                    if d < doc {
                        it.next();
                    } else {
                        break;
                    }
                }
                if let Some(&&(d, _)) = it.peek() {
                    if d == doc {
                        keep.push(doc);
                    }
                }
            }
            result = keep;
            if result.is_empty() {
                break;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Term ids used by the fixture: 0=heart 1=blood 2=surgery 3=pressure
    // 4=soccer 5=goal
    fn doc(id: DocId, terms: &[TermId]) -> Document {
        Document::from_tokens(id, terms.to_vec())
    }

    fn sample_index() -> InvertedIndex {
        InvertedIndex::build(&[
            doc(0, &[0, 1, 1]),
            doc(1, &[0, 2]),
            doc(2, &[1, 3, 0]),
            doc(3, &[4, 5]),
        ])
    }

    #[test]
    fn document_frequency_counts_docs_not_occurrences() {
        let idx = sample_index();
        assert_eq!(idx.document_frequency(1), 2);
        assert_eq!(idx.collection_frequency(1), 3);
        assert_eq!(idx.document_frequency(99), 0);
    }

    #[test]
    fn collection_stats() {
        let idx = sample_index();
        assert_eq!(idx.num_docs(), 4);
        assert_eq!(idx.total_tokens(), 10);
        assert_eq!(idx.vocabulary_size(), 6);
        assert_eq!(idx.doc_length(0), 3);
    }

    #[test]
    fn conjunctive_match_intersects() {
        let idx = sample_index();
        assert_eq!(idx.conjunctive_match(&[0, 1]), vec![0, 2]);
        assert_eq!(idx.conjunctive_match(&[0]), vec![0, 1, 2]);
        assert!(idx.conjunctive_match(&[0, 5]).is_empty());
        assert!(idx.conjunctive_match(&[99]).is_empty());
        assert!(idx.conjunctive_match(&[]).is_empty());
    }

    #[test]
    fn postings_are_sorted_by_doc_id() {
        let idx = sample_index();
        for (_, list) in idx.terms() {
            assert!(list.postings.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    #[should_panic(expected = "document id must equal its position")]
    fn build_rejects_misnumbered_docs() {
        InvertedIndex::build(&[doc(5, &[0])]);
    }

    #[test]
    fn empty_collection() {
        let idx = InvertedIndex::build(&[]);
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.vocabulary_size(), 0);
        assert!(idx.conjunctive_match(&[0]).is_empty());
    }
}
