//! Text analysis pipeline: tokenize → (optional) stopword removal →
//! (optional) Porter stemming.
//!
//! Both documents and queries must pass through the *same* analyzer so that
//! content-summary words and query words live in one token space — exactly
//! as in the paper's Lucene setup where indexing and search shared an
//! analyzer.

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;

/// A configurable analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Analyzer {
    /// Remove stopwords before indexing.
    pub remove_stopwords: bool,
    /// Apply the Porter stemmer to each surviving token.
    pub stem: bool,
}

impl Analyzer {
    /// The configuration the paper reports results under: stopword
    /// elimination plus stemming (Section 6.2).
    pub fn english() -> Self {
        Analyzer {
            remove_stopwords: true,
            stem: true,
        }
    }

    /// Tokenization only — used for ablations on the effect of stemming.
    pub fn plain() -> Self {
        Analyzer {
            remove_stopwords: false,
            stem: false,
        }
    }

    /// Stopword elimination without stemming.
    pub fn no_stem() -> Self {
        Analyzer {
            remove_stopwords: true,
            stem: false,
        }
    }

    /// Run the pipeline over raw text.
    ///
    /// ```
    /// use textindex::Analyzer;
    /// let a = Analyzer::english();
    /// assert_eq!(a.analyze("The databases are failing"), vec!["databas", "fail"]);
    /// ```
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .filter(|t| !self.remove_stopwords || !is_stopword(t))
            .map(|t| if self.stem { porter_stem(&t) } else { t })
            .collect()
    }

    /// Analyze a single already-tokenized word (used for query terms that
    /// arrive as individual keywords rather than free text).
    pub fn analyze_term(&self, term: &str) -> Option<String> {
        let lower = term.to_lowercase();
        if self.remove_stopwords && is_stopword(&lower) {
            return None;
        }
        if lower.chars().count() < crate::tokenize::MIN_TOKEN_LEN {
            return None;
        }
        Some(if self.stem {
            porter_stem(&lower)
        } else {
            lower
        })
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::english()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_removes_stopwords_and_stems() {
        let a = Analyzer::english();
        assert_eq!(
            a.analyze("the running of the databases"),
            vec!["run", "databas"]
        );
    }

    #[test]
    fn plain_keeps_everything() {
        let a = Analyzer::plain();
        assert_eq!(
            a.analyze("the running dogs"),
            vec!["the", "running", "dogs"]
        );
    }

    #[test]
    fn no_stem_only_removes_stopwords() {
        let a = Analyzer::no_stem();
        assert_eq!(a.analyze("the running dogs"), vec!["running", "dogs"]);
    }

    #[test]
    fn analyze_term_filters_stopwords() {
        let a = Analyzer::english();
        assert_eq!(a.analyze_term("The"), None);
        assert_eq!(
            a.analyze_term("Hypertension"),
            Some("hypertens".to_string())
        );
    }

    #[test]
    fn analyze_term_filters_short_tokens() {
        let a = Analyzer::plain();
        assert_eq!(a.analyze_term("x"), None);
    }
}
