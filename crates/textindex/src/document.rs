//! Documents: the unit of indexing, sampling, and relevance judgment.

use crate::analyzer::Analyzer;
use crate::dict::{TermDict, TermId};

/// Identifier of a document *within one database*. Databases are independent
/// collections, so ids are only unique per database.
pub type DocId = u32;

/// A tokenized document, stored as interned term ids.
///
/// Documents keep term *occurrences* (duplicates preserved, in order):
/// term frequencies matter for the LM selection algorithm and the KL metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Database-local identifier.
    pub id: DocId,
    /// Analyzed tokens in document order.
    pub tokens: Vec<TermId>,
}

impl Document {
    /// Build a document from raw text: analyze, then intern into `dict`.
    pub fn from_text(id: DocId, text: &str, analyzer: &Analyzer, dict: &mut TermDict) -> Self {
        let tokens = analyzer.analyze(text);
        Document {
            id,
            tokens: dict.intern_all(&tokens),
        }
    }

    /// Build a document from pre-interned tokens.
    pub fn from_tokens(id: DocId, tokens: Vec<TermId>) -> Self {
        Document { id, tokens }
    }

    /// Number of token occurrences (document length).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the document contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The *distinct* terms of the document, each exactly once, ascending.
    pub fn distinct_terms(&self) -> Vec<TermId> {
        let mut terms = self.tokens.clone();
        terms.sort_unstable();
        terms.dedup();
        terms
    }

    /// Does the document contain `term`?
    pub fn contains_term(&self, term: TermId) -> bool {
        self.tokens.contains(&term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_analyzes_and_interns() {
        let mut dict = TermDict::new();
        let d = Document::from_text(
            7,
            "The heart and the blood",
            &Analyzer::english(),
            &mut dict,
        );
        assert_eq!(d.id, 7);
        assert_eq!(d.tokens.len(), 2);
        assert_eq!(dict.term(d.tokens[0]), "heart");
        assert_eq!(dict.term(d.tokens[1]), "blood");
    }

    #[test]
    fn distinct_terms_dedupes_and_sorts() {
        let d = Document::from_tokens(0, vec![5, 2, 5, 9]);
        assert_eq!(d.distinct_terms(), vec![2, 5, 9]);
    }

    #[test]
    fn contains_term_checks_membership() {
        let d = Document::from_tokens(0, vec![1, 2]);
        assert!(d.contains_term(1));
        assert!(!d.contains_term(3));
    }

    #[test]
    fn len_counts_occurrences() {
        let d = Document::from_tokens(0, vec![4, 4]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert!(Document::from_tokens(1, vec![]).is_empty());
    }
}
