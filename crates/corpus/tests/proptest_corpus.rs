//! Property-based tests for the synthetic corpus generator: structural
//! invariants of test beds under arbitrary seeds and scales.

use proptest::prelude::*;

use corpus::{QueryLengthModel, SizeModel, TestBedConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any tiny test bed upholds its structural invariants.
    #[test]
    fn testbed_structural_invariants(seed in 0u64..10_000) {
        let bed = TestBedConfig::tiny(seed).build();
        // Relevance matrix shape.
        prop_assert_eq!(bed.relevance.len(), bed.queries.len());
        for row in &bed.relevance {
            prop_assert_eq!(row.len(), bed.databases.len());
        }
        for (qi, q) in bed.queries.iter().enumerate() {
            // Relevance never exceeds a database's document count.
            for (di, &r) in bed.relevance[qi].iter().enumerate() {
                prop_assert!(r as usize <= bed.databases[di].db.num_docs());
            }
            // Query invariants.
            prop_assert!(!q.terms.is_empty());
            prop_assert!(!q.content_terms.is_empty());
            prop_assert!(bed.hierarchy.is_leaf(q.topic));
        }
        for tdb in &bed.databases {
            prop_assert_eq!(tdb.doc_focus.len(), tdb.db.num_docs());
            // All focus categories are leaves.
            for &f in &tdb.doc_focus {
                prop_assert!(bed.hierarchy.is_leaf(f));
            }
            // Documents are non-empty and ids are positional.
            for (i, doc) in tdb.db.documents().iter().enumerate() {
                prop_assert_eq!(doc.id as usize, i);
                prop_assert!(!doc.is_empty());
            }
        }
    }

    /// Relevance judgments are consistent with their definition: a doc
    /// counts iff its focus matches the query topic and it contains a
    /// content word.
    #[test]
    fn relevance_matches_definition(seed in 0u64..2_000) {
        let bed = TestBedConfig::tiny(seed).build();
        for (qi, q) in bed.queries.iter().enumerate().take(3) {
            for (di, tdb) in bed.databases.iter().enumerate().take(4) {
                let expected = tdb
                    .db
                    .documents()
                    .iter()
                    .filter(|doc| {
                        tdb.doc_focus[doc.id as usize] == q.topic
                            && q.content_terms.iter().any(|&t| doc.contains_term(t))
                    })
                    .count() as u32;
                prop_assert_eq!(bed.relevance[qi][di], expected);
            }
        }
    }

    /// Query lengths respect their regime's bounds for any seed.
    #[test]
    fn query_lengths_in_bounds(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let long = QueryLengthModel::TrecLong.sample_len(&mut rng);
            prop_assert!((8..=34).contains(&long));
            let short = QueryLengthModel::TrecShort.sample_len(&mut rng);
            prop_assert!((2..=5).contains(&short));
        }
    }

    /// Database sizes respect the configured model.
    #[test]
    fn database_sizes_in_bounds(seed in 0u64..3_000) {
        let mut config = TestBedConfig::tiny(seed);
        config.sizes = SizeModel::LogUniform(30, 90);
        config.num_databases = 6;
        let bed = config.build();
        for tdb in &bed.databases {
            prop_assert!((30..=90).contains(&tdb.db.num_docs()));
        }
    }
}
