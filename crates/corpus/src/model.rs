//! The generative model behind the synthetic corpora.
//!
//! The paper's data sets (TREC4, TREC6, 315 web databases) are proprietary;
//! what shrinkage actually relies on is a *statistical* property of such
//! collections: topically related databases draw words from related,
//! heavy-tailed (Zipfian) distributions. This module implements a
//! hierarchical topic model with exactly those properties:
//!
//! * a **global background** vocabulary shared by every document (general
//!   English);
//! * a **topic vocabulary per category node**, so a document about
//!   `Health/Diseases/AIDS` uses words from the AIDS node, the Diseases
//!   node, and the Health node — which is what makes category summaries
//!   informative about their member databases;
//! * a small **database-specific** vocabulary (site boilerplate, author
//!   names) that no amount of shrinkage can recover — keeping the precision
//!   metrics honest;
//! * Zipfian within-topic word frequencies, so document samples miss tail
//!   words exactly as the paper's Example 1 (PubMed/"hemophilia") describes.

use rand::Rng;
use textindex::{Document, TermDict, TermId};

use dbselect_core::hierarchy::{CategoryId, Hierarchy};

use crate::zipf::{sample_lognormal, zipf_over, DiscreteDist};

/// Parameters of the generative topic model.
#[derive(Debug, Clone, Copy)]
pub struct TopicModelConfig {
    /// Size of the global background vocabulary.
    pub global_vocab: usize,
    /// Zipf exponent of the background distribution.
    pub global_exponent: f64,
    /// Topic-specific vocabulary size per category node.
    pub node_vocab: usize,
    /// Zipf exponent of each topic distribution.
    pub node_exponent: f64,
    /// Database-specific vocabulary size.
    pub db_vocab: usize,
    /// Probability a token comes from the background vocabulary.
    pub p_background: f64,
    /// Probability a token comes from the database-specific vocabulary.
    pub p_db_specific: f64,
    /// Median document length in tokens (log-normal).
    pub doc_len_median: f64,
    /// Log-space standard deviation of document length.
    pub doc_len_sigma: f64,
    /// Probability a document is *off-topic* for its database: generated
    /// from a random other leaf. These documents are what make relevance
    /// spread beyond the obviously matching databases.
    pub off_topic_prob: f64,
    /// Log-normal σ of each database's private perturbation of its topic
    /// vocabularies. Zero makes same-topic databases statistically
    /// identical; realistic collections differ a lot in which *specific*
    /// topical words they feature (PubMed has "hemophilia", a fitness site
    /// does not), and it is exactly this variation database selection must
    /// resolve.
    pub db_topic_jitter_sigma: f64,
}

impl Default for TopicModelConfig {
    fn default() -> Self {
        TopicModelConfig {
            global_vocab: 12_000,
            global_exponent: 1.05,
            node_vocab: 2000,
            node_exponent: 1.0,
            db_vocab: 150,
            p_background: 0.45,
            p_db_specific: 0.05,
            doc_len_median: 110.0,
            doc_len_sigma: 0.35,
            off_topic_prob: 0.15,
            db_topic_jitter_sigma: 1.2,
        }
    }
}

/// The instantiated topic model: one word distribution per category node
/// plus the shared background.
pub struct CorpusModel {
    config: TopicModelConfig,
    hierarchy: Hierarchy,
    background: DiscreteDist<TermId>,
    /// Topic distribution per category (`None` for the root, which has no
    /// vocabulary of its own — its "topic" is the background).
    node_lms: Vec<Option<DiscreteDist<TermId>>>,
    /// Per-leaf distribution over the non-root nodes of its path, weighted
    /// toward the leaf (deeper = more specific = more probable).
    path_dists: Vec<Option<DiscreteDist<CategoryId>>>,
    leaves: Vec<CategoryId>,
}

impl CorpusModel {
    /// Instantiate the model over `hierarchy`, interning all vocabulary into
    /// `dict`.
    pub fn new(hierarchy: Hierarchy, config: TopicModelConfig, dict: &mut TermDict) -> Self {
        let background_words: Vec<TermId> = (0..config.global_vocab)
            .map(|r| dict.intern(&format!("g{r:05}")))
            .collect();
        let background = zipf_over(&background_words, config.global_exponent, 0.0);

        let mut node_lms = Vec::with_capacity(hierarchy.len());
        for node in hierarchy.ids() {
            if node == Hierarchy::ROOT {
                node_lms.push(None);
                continue;
            }
            let words: Vec<TermId> = (0..config.node_vocab)
                .map(|r| dict.intern(&format!("c{node:03}x{r:04}")))
                .collect();
            node_lms.push(Some(zipf_over(&words, config.node_exponent, 0.0)));
        }

        let mut path_dists = vec![None; hierarchy.len()];
        let leaves = hierarchy.leaves();
        for &leaf in &leaves {
            let path = hierarchy.path_from_root(leaf);
            let weighted: Vec<(CategoryId, f64)> = path
                .iter()
                .filter(|&&c| c != Hierarchy::ROOT)
                .map(|&c| (c, hierarchy.depth(c) as f64))
                .collect();
            if !weighted.is_empty() {
                path_dists[leaf] = Some(DiscreteDist::new(weighted));
            }
        }

        CorpusModel {
            config,
            hierarchy,
            background,
            node_lms,
            path_dists,
            leaves,
        }
    }

    /// The hierarchy the model was built over.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The model configuration.
    pub fn config(&self) -> &TopicModelConfig {
        &self.config
    }

    /// All leaf categories (the classification targets for databases).
    pub fn leaves(&self) -> &[CategoryId] {
        &self.leaves
    }

    /// The `n` most frequent background words — a stand-in for the English
    /// dictionary real query-based sampling bootstraps from.
    pub fn seed_lexicon(&self, n: usize) -> Vec<TermId> {
        self.background.items().iter().take(n).copied().collect()
    }

    /// Build the private vocabulary distribution of one database.
    pub fn make_db_lm(&self, db_index: usize, dict: &mut TermDict) -> DiscreteDist<TermId> {
        let words: Vec<TermId> = (0..self.config.db_vocab)
            .map(|r| dict.intern(&format!("d{db_index:03}x{r:04}")))
            .collect();
        zipf_over(&words, self.config.node_exponent, 0.0)
    }

    /// Build a database's private, jittered view of the topic vocabularies
    /// along its home path: the same words as the shared node distributions,
    /// but with per-word log-normal frequency perturbations.
    pub fn make_db_path_lms<R: Rng + ?Sized>(
        &self,
        home_leaf: CategoryId,
        rng: &mut R,
    ) -> DbPathLms {
        let sigma = self.config.db_topic_jitter_sigma;
        let mut per_node = Vec::new();
        for node in self.hierarchy.path_from_root(home_leaf) {
            if node == Hierarchy::ROOT {
                continue;
            }
            let items = self.node_lms[node]
                .as_ref()
                .expect("non-root nodes have topic vocabularies")
                .items();
            per_node.push((
                node,
                crate::zipf::zipf_jittered(items, self.config.node_exponent, sigma, rng),
            ));
        }
        DbPathLms { per_node }
    }

    /// Draw one background (general-English) token.
    pub fn sample_background_token<R: Rng + ?Sized>(&self, rng: &mut R) -> TermId {
        self.background.sample(rng)
    }

    /// Draw one topical token for a document focused on `leaf`: a word from
    /// the leaf's or one of its ancestors' topic vocabularies.
    pub fn sample_topic_token<R: Rng + ?Sized>(&self, leaf: CategoryId, rng: &mut R) -> TermId {
        match &self.path_dists[leaf] {
            Some(dist) => {
                let node = dist.sample(rng);
                self.node_lms[node]
                    .as_ref()
                    .expect("non-root nodes have topic vocabularies")
                    .sample(rng)
            }
            None => self.background.sample(rng),
        }
    }

    /// Draw a topical *query* token for topic `leaf`. With probability
    /// `tail_bias`, the word is picked uniformly from the chosen node's
    /// vocabulary — landing mostly in the Zipf tail. Real information-need
    /// queries name specific, infrequent terms ("hemophilia", the paper's
    /// Example 1), and it is exactly those words that document samples miss;
    /// drawing query words only from the Zipf head would make database
    /// selection trivially easy.
    pub fn sample_topic_query_token<R: Rng + ?Sized>(
        &self,
        leaf: CategoryId,
        tail_bias: f64,
        rng: &mut R,
    ) -> TermId {
        match &self.path_dists[leaf] {
            Some(dist) => {
                let node = dist.sample(rng);
                let lm = self.node_lms[node]
                    .as_ref()
                    .expect("non-root nodes have topic vocabularies");
                if rng.gen::<f64>() < tail_bias {
                    let items = lm.items();
                    items[rng.gen_range(0..items.len())]
                } else {
                    lm.sample(rng)
                }
            }
            None => self.background.sample(rng),
        }
    }

    /// Pick the focus leaf for the next document of a database whose home
    /// category is `home_leaf`: usually the home leaf, occasionally another.
    pub fn sample_focus<R: Rng + ?Sized>(&self, home_leaf: CategoryId, rng: &mut R) -> CategoryId {
        if rng.gen::<f64>() < self.config.off_topic_prob && self.leaves.len() > 1 {
            loop {
                let other = self.leaves[rng.gen_range(0..self.leaves.len())];
                if other != home_leaf {
                    return other;
                }
            }
        } else {
            home_leaf
        }
    }

    /// Generate one document with the given id, topical focus, and
    /// database-specific vocabulary, drawing topical tokens from the
    /// *shared* node distributions (used for classifier training documents
    /// and tests).
    pub fn generate_document<R: Rng + ?Sized>(
        &self,
        id: u32,
        focus: CategoryId,
        db_lm: &DiscreteDist<TermId>,
        rng: &mut R,
    ) -> Document {
        self.generate_document_for_db(id, focus, db_lm, None, rng)
    }

    /// Generate one document for a specific database: topical tokens for
    /// nodes on the database's home path come from its jittered
    /// distributions (when `path_lms` is given); everything else falls back
    /// to the shared node distributions.
    pub fn generate_document_for_db<R: Rng + ?Sized>(
        &self,
        id: u32,
        focus: CategoryId,
        db_lm: &DiscreteDist<TermId>,
        path_lms: Option<&DbPathLms>,
        rng: &mut R,
    ) -> Document {
        let len = sample_lognormal(rng, self.config.doc_len_median, self.config.doc_len_sigma)
            .clamp(20.0, 800.0) as usize;
        let mut tokens = Vec::with_capacity(len);
        let p_bg = self.config.p_background;
        let p_db = self.config.p_db_specific;
        for _ in 0..len {
            let u: f64 = rng.gen();
            let token = if u < p_bg {
                self.background.sample(rng)
            } else if u < p_bg + p_db {
                db_lm.sample(rng)
            } else {
                self.sample_topic_token_via(focus, path_lms, rng)
            };
            tokens.push(token);
        }
        Document::from_tokens(id, tokens)
    }

    fn sample_topic_token_via<R: Rng + ?Sized>(
        &self,
        focus: CategoryId,
        path_lms: Option<&DbPathLms>,
        rng: &mut R,
    ) -> TermId {
        match &self.path_dists[focus] {
            Some(dist) => {
                let node = dist.sample(rng);
                if let Some(lm) = path_lms.and_then(|p| p.for_node(node)) {
                    return lm.sample(rng);
                }
                self.node_lms[node]
                    .as_ref()
                    .expect("non-root nodes have topic vocabularies")
                    .sample(rng)
            }
            None => self.background.sample(rng),
        }
    }
}

/// A database's private, jittered topic distributions, one per non-root
/// node of its home path.
pub struct DbPathLms {
    per_node: Vec<(CategoryId, DiscreteDist<TermId>)>,
}

impl DbPathLms {
    /// The jittered distribution for `node`, if it lies on the home path.
    pub fn for_node(&self, node: CategoryId) -> Option<&DiscreteDist<TermId>> {
        self.per_node
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, lm)| lm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_model() -> (CorpusModel, TermDict) {
        let mut dict = TermDict::new();
        let config = TopicModelConfig {
            global_vocab: 500,
            node_vocab: 50,
            db_vocab: 20,
            ..Default::default()
        };
        let model = CorpusModel::new(Hierarchy::odp_like(), config, &mut dict);
        (model, dict)
    }

    #[test]
    fn vocabularies_are_disjoint_blocks() {
        let (_model, dict) = small_model();
        // 500 global + 71 non-root nodes × 50 topic words.
        assert_eq!(dict.len(), 500 + 71 * 50);
    }

    #[test]
    fn documents_have_reasonable_lengths() {
        let (model, mut dict) = small_model();
        let db_lm = model.make_db_lm(0, &mut dict);
        let mut rng = StdRng::seed_from_u64(1);
        let leaf = model.leaves()[0];
        for i in 0..50 {
            let doc = model.generate_document(i, leaf, &db_lm, &mut rng);
            assert!((20..=800).contains(&doc.len()), "len {}", doc.len());
        }
    }

    #[test]
    fn same_leaf_docs_share_topic_vocabulary() {
        let (model, mut dict) = small_model();
        let db_lm_a = model.make_db_lm(0, &mut dict);
        let db_lm_b = model.make_db_lm(1, &mut dict);
        let mut rng = StdRng::seed_from_u64(2);
        let leaf = model.leaves()[3];
        let far_leaf = model.leaves()[40];
        let collect = |model: &CorpusModel, leaf, db_lm, rng: &mut StdRng| {
            let mut terms = std::collections::HashSet::new();
            for i in 0..30 {
                terms.extend(
                    model
                        .generate_document(i, leaf, db_lm, rng)
                        .tokens
                        .iter()
                        .copied(),
                );
            }
            terms
        };
        let a = collect(&model, leaf, &db_lm_a, &mut rng);
        let b = collect(&model, leaf, &db_lm_b, &mut rng);
        let c = collect(&model, far_leaf, &db_lm_b, &mut rng);
        let overlap_same: usize = a.intersection(&b).count();
        let overlap_diff: usize = a.intersection(&c).count();
        assert!(
            overlap_same > overlap_diff,
            "same-topic databases overlap more ({overlap_same} vs {overlap_diff})"
        );
    }

    #[test]
    fn sample_focus_is_usually_home() {
        let (model, _) = small_model();
        let mut rng = StdRng::seed_from_u64(3);
        let home = model.leaves()[0];
        let off = (0..1000)
            .filter(|_| model.sample_focus(home, &mut rng) != home)
            .count();
        let frac = off as f64 / 1000.0;
        assert!(
            (frac - model.config().off_topic_prob).abs() < 0.05,
            "off-topic frac {frac}"
        );
    }

    #[test]
    fn seed_lexicon_returns_most_common_words() {
        let (model, dict) = small_model();
        let lex = model.seed_lexicon(10);
        assert_eq!(lex.len(), 10);
        assert_eq!(dict.term(lex[0]), "g00000");
    }
}
