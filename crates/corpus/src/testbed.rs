//! Test-bed assembly: databases, queries, and relevance judgments for the
//! three data sets of the paper's evaluation (Section 5.1), generated from
//! the hierarchical topic model.
//!
//! * [`TestBedConfig::trec4_like`] — 100 topically-focused databases plus
//!   long queries (TREC-4 regime);
//! * [`TestBedConfig::trec6_like`] — the same database shape with short
//!   queries (TREC-6 regime);
//! * [`TestBedConfig::web_like`] — 315 databases, 5 per leaf category plus
//!   extras, with log-uniform sizes spanning orders of magnitude (the Web
//!   set's defining property: its larger databases make sampled summaries
//!   less complete, which is where shrinkage helps most).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textindex::{Document, IndexedDatabase, RemoteDatabase, TermDict, TermId};

use dbselect_core::hierarchy::{CategoryId, Hierarchy};

use crate::model::{CorpusModel, TopicModelConfig};
use crate::queries::{generate_queries, Query, QueryLengthModel};
use crate::zipf::sample_log_uniform;

/// How database sizes (document counts) are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeModel {
    /// Uniform over `[lo, hi]` — the TREC sets' k-means clusters.
    Uniform(usize, usize),
    /// Log-uniform over `[lo, hi]` — the Web set's heavy-tailed sizes.
    LogUniform(usize, usize),
}

impl SizeModel {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            SizeModel::Uniform(lo, hi) => rng.gen_range(lo..=hi),
            SizeModel::LogUniform(lo, hi) => sample_log_uniform(rng, lo, hi),
        }
    }
}

/// How databases are assigned home categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentModel {
    /// Each database gets a uniformly random leaf (TREC clustering: multiple
    /// databases may share a topic, some topics may be empty).
    RandomLeaf,
    /// `per_leaf` databases for every leaf, plus `extra` on random leaves
    /// (the Web set: "top-5 from each of the 54 leaf categories ... plus
    /// other arbitrarily selected web sites").
    PerLeaf {
        /// Databases per leaf category.
        per_leaf: usize,
        /// Additional databases on random leaves.
        extra: usize,
    },
}

/// Everything needed to build a [`TestBed`].
#[derive(Debug, Clone)]
pub struct TestBedConfig {
    /// Data-set name, used in database names and reports.
    pub name: String,
    /// Master RNG seed: the same config always builds the same test bed.
    pub seed: u64,
    /// Number of databases (only for [`AssignmentModel::RandomLeaf`]).
    pub num_databases: usize,
    /// Database size distribution.
    pub sizes: SizeModel,
    /// Category assignment scheme.
    pub assignment: AssignmentModel,
    /// Number of evaluation queries.
    pub num_queries: usize,
    /// Query length regime.
    pub query_len: QueryLengthModel,
    /// Topic model parameters.
    pub topics: TopicModelConfig,
}

impl TestBedConfig {
    /// The TREC4-like set: 100 topical databases, long queries.
    pub fn trec4_like() -> Self {
        TestBedConfig {
            name: "TREC4".into(),
            seed: 0x7254_0004,
            num_databases: 100,
            // The paper's TREC4 set holds ~567k documents in 100 k-means
            // clusters (~5.7k docs each), so a 300-document sample covers
            // only a few percent of a database — the regime shrinkage is
            // designed for.
            sizes: SizeModel::Uniform(1500, 9000),
            assignment: AssignmentModel::RandomLeaf,
            num_queries: 50,
            query_len: QueryLengthModel::TrecLong,
            topics: TopicModelConfig::default(),
        }
    }

    /// The TREC6-like set: same database shape, short queries, new seed.
    pub fn trec6_like() -> Self {
        TestBedConfig {
            name: "TREC6".into(),
            seed: 0x7254_0006,
            num_databases: 100,
            sizes: SizeModel::Uniform(1500, 9000),
            assignment: AssignmentModel::RandomLeaf,
            num_queries: 50,
            query_len: QueryLengthModel::TrecShort,
            topics: TopicModelConfig::default(),
        }
    }

    /// The Web-like set: 315 databases (5 per leaf + 45 extra) with
    /// log-uniform sizes spanning ~2 orders of magnitude.
    pub fn web_like() -> Self {
        TestBedConfig {
            name: "Web".into(),
            seed: 0x0077_EB00,
            num_databases: 315,
            sizes: SizeModel::LogUniform(100, 5000),
            assignment: AssignmentModel::PerLeaf {
                per_leaf: 5,
                extra: 45,
            },
            num_queries: 50,
            query_len: QueryLengthModel::TrecShort,
            topics: TopicModelConfig::default(),
        }
    }

    /// A miniature test bed for unit and integration tests: a handful of
    /// small databases over the full hierarchy, built in milliseconds.
    pub fn tiny(seed: u64) -> Self {
        TestBedConfig {
            name: "Tiny".into(),
            seed,
            num_databases: 12,
            sizes: SizeModel::Uniform(40, 120),
            assignment: AssignmentModel::RandomLeaf,
            num_queries: 10,
            query_len: QueryLengthModel::TrecShort,
            topics: TopicModelConfig {
                global_vocab: 1500,
                node_vocab: 120,
                db_vocab: 40,
                ..Default::default()
            },
        }
    }

    /// Shrink database counts and sizes by `factor` (for quick experiment
    /// runs). Query counts are preserved.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        let f = factor.max(1);
        self.num_databases = (self.num_databases / f).max(4);
        self.sizes = match self.sizes {
            SizeModel::Uniform(lo, hi) => SizeModel::Uniform((lo / f).max(20), (hi / f).max(40)),
            SizeModel::LogUniform(lo, hi) => {
                SizeModel::LogUniform((lo / f).max(20), (hi / f).max(60))
            }
        };
        if let AssignmentModel::PerLeaf { per_leaf, extra } = self.assignment {
            self.assignment = AssignmentModel::PerLeaf {
                per_leaf: (per_leaf / f).max(1),
                extra: extra / f,
            };
        }
        self
    }

    /// Generate the test bed.
    pub fn build(&self) -> TestBed {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dict = TermDict::new();
        let model = CorpusModel::new(Hierarchy::odp_like(), self.topics, &mut dict);
        let leaves = model.leaves().to_vec();

        // Decide home categories.
        let homes: Vec<CategoryId> = match self.assignment {
            AssignmentModel::RandomLeaf => (0..self.num_databases)
                .map(|_| leaves[rng.gen_range(0..leaves.len())])
                .collect(),
            AssignmentModel::PerLeaf { per_leaf, extra } => {
                let mut homes = Vec::new();
                for &leaf in &leaves {
                    homes.extend(std::iter::repeat_n(leaf, per_leaf));
                }
                homes.extend((0..extra).map(|_| leaves[rng.gen_range(0..leaves.len())]));
                homes
            }
        };

        // Generate databases.
        let mut databases = Vec::with_capacity(homes.len());
        for (idx, &home) in homes.iter().enumerate() {
            let size = self.sizes.sample(&mut rng);
            let db_lm = model.make_db_lm(idx, &mut dict);
            // The database's own spin on its topic vocabularies: which
            // specific topical words it features heavily.
            let path_lms = model.make_db_path_lms(home, &mut rng);
            let mut docs = Vec::with_capacity(size);
            let mut focus = Vec::with_capacity(size);
            for doc_id in 0..size {
                let f = model.sample_focus(home, &mut rng);
                focus.push(f);
                docs.push(model.generate_document_for_db(
                    doc_id as u32,
                    f,
                    &db_lm,
                    Some(&path_lms),
                    &mut rng,
                ));
            }
            let name = format!("{}-db{idx:03}", self.name);
            databases.push(TestDatabase {
                name,
                category: home,
                db: IndexedDatabase::new(format!("{}-db{idx:03}", self.name), docs),
                doc_focus: focus,
            });
        }

        // Queries and relevance.
        let queries = generate_queries(&model, self.num_queries, self.query_len, &mut rng);
        let relevance = compute_relevance(&databases, &queries);

        let hierarchy = model.hierarchy().clone();
        let seed_lexicon = model.seed_lexicon(2000);
        TestBed {
            name: self.name.clone(),
            dict,
            hierarchy,
            databases,
            queries,
            relevance,
            seed_lexicon,
            model,
        }
    }
}

/// One generated database plus its ground truth.
#[derive(Debug, Clone)]
pub struct TestDatabase {
    /// Database name, e.g. `Web-db042`.
    pub name: String,
    /// True home category (a leaf) — the "Google Directory classification".
    pub category: CategoryId,
    /// The searchable database.
    pub db: IndexedDatabase,
    /// Per-document topical focus (ground truth for relevance).
    pub doc_focus: Vec<CategoryId>,
}

/// A complete evaluation test bed.
pub struct TestBed {
    /// Data-set name.
    pub name: String,
    /// The shared term dictionary.
    pub dict: TermDict,
    /// The classification hierarchy.
    pub hierarchy: Hierarchy,
    /// All databases with ground truth.
    pub databases: Vec<TestDatabase>,
    /// Evaluation queries.
    pub queries: Vec<Query>,
    /// `relevance[q][d]` = number of documents in database `d` relevant to
    /// query `q` (the `r(q, D)` of the Rk metric).
    pub relevance: Vec<Vec<u32>>,
    /// Common words to bootstrap query-based sampling (the "English
    /// dictionary" role).
    pub seed_lexicon: Vec<TermId>,
    /// The generative model (kept for producing *labeled training
    /// documents* for the probe classifier — the stand-in for the
    /// ODP-labeled pages QProber trains on).
    pub model: CorpusModel,
}

impl TestBed {
    /// Total number of documents across all databases.
    pub fn total_docs(&self) -> usize {
        self.databases.iter().map(|d| d.db.num_docs()).sum()
    }

    /// The true classification of every database, in database order.
    pub fn true_categories(&self) -> Vec<CategoryId> {
        self.databases.iter().map(|d| d.category).collect()
    }

    /// Document-level relevance ground truth: is document `doc` of database
    /// `db` relevant to query `query_index`? (Same definition the
    /// `relevance` matrix aggregates.)
    pub fn is_relevant(&self, query_index: usize, db: usize, doc: u32) -> bool {
        let q = &self.queries[query_index];
        let tdb = &self.databases[db];
        let Some(document) = tdb.db.fetch(doc) else {
            return false;
        };
        tdb.doc_focus[doc as usize] == q.topic
            && q.content_terms.iter().any(|&t| document.contains_term(t))
    }

    /// Total relevant documents for a query across the whole collection.
    pub fn total_relevant(&self, query_index: usize) -> u64 {
        self.relevance[query_index]
            .iter()
            .map(|&r| u64::from(r))
            .sum()
    }

    /// Generate `per_leaf` labeled training documents for every leaf
    /// category — the external directory-labeled corpus a probe classifier
    /// trains on. Uses a private vocabulary slot so no database's
    /// site-specific words leak into the probes.
    pub fn training_documents<R: Rng + ?Sized>(
        &mut self,
        per_leaf: usize,
        rng: &mut R,
    ) -> Vec<(CategoryId, Document)> {
        // A dedicated "training site" vocabulary, separate from every
        // database's private vocabulary.
        let train_lm = self.model.make_db_lm(1_000_000, &mut self.dict);
        let mut out = Vec::new();
        for &leaf in self.model.leaves().to_vec().iter() {
            for i in 0..per_leaf {
                let doc = self.model.generate_document(i as u32, leaf, &train_lm, rng);
                out.push((leaf, doc));
            }
        }
        out
    }
}

/// A document is relevant to a query iff it was generated with the query's
/// topic as its focus *and* it mentions at least one of the query's content
/// words — topical aboutness plus lexical evidence, mimicking how assessors
/// judge pooled TREC documents.
fn compute_relevance(databases: &[TestDatabase], queries: &[Query]) -> Vec<Vec<u32>> {
    queries
        .iter()
        .map(|q| {
            databases
                .iter()
                .map(|tdb| {
                    let mut matched: HashSet<u32> = HashSet::new();
                    for &term in &q.content_terms {
                        if let Some(list) = tdb.db.index().posting_list(term) {
                            matched.extend(list.postings.iter().map(|&(d, _)| d));
                        }
                    }
                    matched
                        .into_iter()
                        .filter(|&doc| tdb.doc_focus[doc as usize] == q.topic)
                        .count() as u32
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_testbed_builds_consistently() {
        let bed = TestBedConfig::tiny(1).build();
        assert_eq!(bed.databases.len(), 12);
        assert_eq!(bed.queries.len(), 10);
        assert_eq!(bed.relevance.len(), 10);
        assert_eq!(bed.relevance[0].len(), 12);
        for tdb in &bed.databases {
            assert_eq!(tdb.doc_focus.len(), tdb.db.num_docs());
            assert!(bed.hierarchy.is_leaf(tdb.category));
        }
    }

    #[test]
    fn same_seed_same_testbed() {
        let a = TestBedConfig::tiny(5).build();
        let b = TestBedConfig::tiny(5).build();
        assert_eq!(a.total_docs(), b.total_docs());
        assert_eq!(a.relevance, b.relevance);
        assert_eq!(a.dict.len(), b.dict.len());
    }

    #[test]
    fn different_seed_different_testbed() {
        let a = TestBedConfig::tiny(5).build();
        let b = TestBedConfig::tiny(6).build();
        assert_ne!(a.relevance, b.relevance);
    }

    #[test]
    fn relevance_concentrates_on_matching_topic_databases() {
        let bed = TestBedConfig::tiny(7).build();
        // For each query, the databases whose home category equals the query
        // topic should collectively hold more relevant docs per database
        // than the others.
        let mut on_topic_total = 0u64;
        let mut on_topic_dbs = 0u64;
        let mut off_topic_total = 0u64;
        let mut off_topic_dbs = 0u64;
        for (qi, q) in bed.queries.iter().enumerate() {
            for (di, tdb) in bed.databases.iter().enumerate() {
                if tdb.category == q.topic {
                    on_topic_total += u64::from(bed.relevance[qi][di]);
                    on_topic_dbs += 1;
                } else {
                    off_topic_total += u64::from(bed.relevance[qi][di]);
                    off_topic_dbs += 1;
                }
            }
        }
        if on_topic_dbs > 0 && off_topic_dbs > 0 {
            let on = on_topic_total as f64 / on_topic_dbs as f64;
            let off = off_topic_total as f64 / off_topic_dbs as f64;
            assert!(
                on > off,
                "on-topic avg {on} should exceed off-topic avg {off}"
            );
        }
    }

    #[test]
    fn per_leaf_assignment_covers_every_leaf() {
        let mut config = TestBedConfig::tiny(9);
        config.assignment = AssignmentModel::PerLeaf {
            per_leaf: 1,
            extra: 2,
        };
        let bed = config.build();
        let leaves: HashSet<_> = bed.hierarchy.leaves().into_iter().collect();
        let homes: HashSet<_> = bed.databases.iter().map(|d| d.category).collect();
        assert_eq!(homes, leaves);
        assert_eq!(bed.databases.len(), 54 + 2);
    }

    #[test]
    fn scaled_down_shrinks_counts() {
        let config = TestBedConfig::trec4_like().scaled_down(10);
        assert_eq!(config.num_databases, 10);
        if let SizeModel::Uniform(lo, hi) = config.sizes {
            assert_eq!((lo, hi), (150, 900));
        } else {
            panic!("expected uniform sizes");
        }
    }

    #[test]
    fn seed_lexicon_is_nonempty_and_interned() {
        let bed = TestBedConfig::tiny(3).build();
        assert!(!bed.seed_lexicon.is_empty());
        // All lexicon words resolve in the dictionary.
        for &t in bed.seed_lexicon.iter().take(20) {
            assert!(bed.dict.term(t).starts_with('g'));
        }
    }
}
