//! `corpus` — synthetic hierarchical text corpora with ground truth.
//!
//! The paper's evaluation data (TREC4, TREC6, and 315 real web databases,
//! Section 5.1) is proprietary, so this crate generates statistical
//! stand-ins from a hierarchical topic model: databases classified into the
//! 72-node ODP-like hierarchy, Zipfian vocabularies shared along category
//! paths, TREC-style queries with matched length distributions, and
//! relevance judgments derived from each document's generative topic.
//! See `DESIGN.md` §3 for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use corpus::TestBedConfig;
//!
//! let bed = TestBedConfig::tiny(42).build();
//! assert_eq!(bed.databases.len(), 12);
//! assert!(bed.total_docs() > 0);
//! // Every database is classified under a leaf of the hierarchy.
//! for db in &bed.databases {
//!     assert!(bed.hierarchy.is_leaf(db.category));
//! }
//! ```

pub mod model;
pub mod queries;
pub mod testbed;
pub mod zipf;

pub use model::{CorpusModel, TopicModelConfig};
pub use queries::{generate_queries, Query, QueryLengthModel};
pub use testbed::{AssignmentModel, SizeModel, TestBed, TestBedConfig, TestDatabase};
pub use zipf::DiscreteDist;
