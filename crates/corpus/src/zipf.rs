//! Random sampling primitives for corpus generation: discrete distributions
//! (cumulative-table based), Zipfian word distributions, and a couple of
//! continuous helpers built on `rand` alone.
//!
//! Zipfian term distributions are the load-bearing piece: the paper's whole
//! premise is that "Zipf's law practically guarantees" that samples miss
//! low-frequency words, so the generator must produce realistically
//! heavy-tailed vocabularies.

use rand::Rng;

/// A discrete distribution over arbitrary items, sampled in `O(log n)` via
/// binary search on the cumulative weights.
#[derive(Debug, Clone)]
pub struct DiscreteDist<T> {
    items: Vec<T>,
    cumulative: Vec<f64>,
}

impl<T: Copy> DiscreteDist<T> {
    /// Build from `(item, weight)` pairs. Weights must be non-negative with
    /// a positive sum.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to zero.
    pub fn new(pairs: impl IntoIterator<Item = (T, f64)>) -> Self {
        let mut items = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for (item, w) in pairs {
            debug_assert!(w >= 0.0);
            acc += w;
            items.push(item);
            cumulative.push(acc);
        }
        assert!(
            acc > 0.0,
            "discrete distribution needs positive total weight"
        );
        for c in &mut cumulative {
            *c /= acc;
        }
        DiscreteDist { items, cumulative }
    }

    /// Draw one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let u: f64 = rng.gen();
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) | Err(i) => i,
        };
        self.items[i.min(self.items.len() - 1)]
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The items, in insertion order.
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

/// A Zipf–Mandelbrot distribution over the item indices `0..n`:
/// `P(rank r) ∝ 1 / (r + 1 + shift)^exponent`.
pub fn zipf_weights(n: usize, exponent: f64, shift: f64) -> impl Iterator<Item = f64> {
    (0..n).map(move |r| 1.0 / (r as f64 + 1.0 + shift).powf(exponent))
}

/// Build a Zipfian distribution over `items` (rank = position).
pub fn zipf_over<T: Copy>(items: &[T], exponent: f64, shift: f64) -> DiscreteDist<T> {
    DiscreteDist::new(
        items
            .iter()
            .copied()
            .zip(zipf_weights(items.len(), exponent, shift)),
    )
}

/// Build a *jittered* Zipfian distribution: each weight is multiplied by an
/// independent log-normal factor `exp(σ·N(0,1))`. This is how individual
/// databases get their own spin on a shared topic vocabulary — a word can
/// be frequent in one database and nearly absent from a topical sibling
/// (the paper's "hemophilia in 0.1% of PubMed" example).
pub fn zipf_jittered<T: Copy, R: Rng + ?Sized>(
    items: &[T],
    exponent: f64,
    sigma: f64,
    rng: &mut R,
) -> DiscreteDist<T> {
    DiscreteDist::new(
        items
            .iter()
            .copied()
            .zip(zipf_weights(items.len(), exponent, 0.0))
            .map(|(item, w)| (item, w * (sigma * sample_normal(rng)).exp())),
    )
}

/// A standard-normal draw via Box–Muller (the `rand` crate alone has no
/// normal distribution).
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal draw with the given median and log-space sigma.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    median * (sigma * sample_normal(rng)).exp()
}

/// An integer drawn log-uniformly from `[lo, hi]` — the shape of the Web
/// data set's database sizes (100 to ~376,000 documents in the paper).
pub fn sample_log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: usize, hi: usize) -> usize {
    assert!(lo >= 1 && hi >= lo);
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let v = rng.gen_range(llo..=lhi).exp().round() as usize;
    v.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn discrete_dist_respects_weights() {
        let d = DiscreteDist::new([(0usize, 1.0), (1, 3.0)]);
        let mut rng = rng();
        let ones = (0..10_000).filter(|_| d.sample(&mut rng) == 1).count();
        let frac = ones as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "got {frac}");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn discrete_dist_rejects_zero_weights() {
        let _ = DiscreteDist::new([(0usize, 0.0)]);
    }

    #[test]
    fn zipf_is_heavy_tailed() {
        let items: Vec<usize> = (0..1000).collect();
        let d = zipf_over(&items, 1.0, 0.0);
        let mut rng = rng();
        let mut counts = vec![0usize; 1000];
        // 5000 draws over 1000 ranks: tail words expect < 1 occurrence.
        for _ in 0..5_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[100] * 10);
        let unseen = counts.iter().filter(|&&c| c == 0).count();
        assert!(
            unseen > 50,
            "Zipf tail leaves many words unseen, got {unseen}"
        );
    }

    #[test]
    fn lognormal_is_positive_with_sane_median() {
        let mut rng = rng();
        let mut samples: Vec<f64> = (0..5000)
            .map(|_| sample_lognormal(&mut rng, 120.0, 0.3))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(samples[0] > 0.0);
        let median = samples[2500];
        assert!((median - 120.0).abs() < 10.0, "median {median}");
    }

    #[test]
    fn log_uniform_stays_in_bounds_and_skews_low() {
        let mut rng = rng();
        let samples: Vec<usize> = (0..5000)
            .map(|_| sample_log_uniform(&mut rng, 100, 10_000))
            .collect();
        assert!(samples.iter().all(|&s| (100..=10_000).contains(&s)));
        let below_1000 = samples.iter().filter(|&&s| s < 1000).count();
        // log-uniform: P(< 1000) = ln(10)/ln(100) = 0.5.
        let frac = below_1000 as f64 / 5000.0;
        assert!((frac - 0.5).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
