//! Query and relevance-judgment generation.
//!
//! The paper evaluates selection accuracy with TREC-4 queries 201–250
//! (long: 8–34 words, mean 16.75) and TREC-6 queries 301–350 (short: 2–5
//! words, mean 2.75), plus NIST relevance judgments. We generate queries
//! with matching length statistics from the same topic model that produced
//! the documents, and derive relevance from the *generative* topic of each
//! document — a ground truth correlated with topical content but not
//! identical to lexical match, like human judgments.

use rand::Rng;
use textindex::TermId;

use dbselect_core::hierarchy::CategoryId;

use crate::model::CorpusModel;

/// The two query-length regimes of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLengthModel {
    /// TREC-4-like: 8–34 words, mean ≈ 16.75.
    TrecLong,
    /// TREC-6-like: 2–5 words, mean ≈ 2.75.
    TrecShort,
}

impl QueryLengthModel {
    /// Draw a query length.
    pub fn sample_len<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            // 8 + Exp(mean 8.75), truncated at 34: mean lands near 16.
            QueryLengthModel::TrecLong => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let extra = (-8.75 * u.ln()).round() as usize;
                (8 + extra).min(34)
            }
            // Weights chosen so the mean is exactly 2.75 (the TREC-6 value):
            // P(2)=.5, P(3)=.3, P(4)=.15, P(5)=.05.
            QueryLengthModel::TrecShort => {
                let u: f64 = rng.gen();
                if u < 0.50 {
                    2
                } else if u < 0.80 {
                    3
                } else if u < 0.95 {
                    4
                } else {
                    5
                }
            }
        }
    }
}

/// One evaluation query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Query number (position in the query set).
    pub id: usize,
    /// Distinct query terms, in generation order.
    pub terms: Vec<TermId>,
    /// The topical content terms (subset of `terms`): these define
    /// relevance, the rest is background phrasing.
    pub content_terms: Vec<TermId>,
    /// The leaf category expressing the query's information need.
    pub topic: CategoryId,
}

/// Generate `n` queries against `model`. Each query picks a random leaf
/// topic; its words are drawn mostly from that leaf's (and its ancestors')
/// topic vocabulary, with some general background words mixed in, echoing
/// how TREC topic statements read.
pub fn generate_queries<R: Rng + ?Sized>(
    model: &CorpusModel,
    n: usize,
    length_model: QueryLengthModel,
    rng: &mut R,
) -> Vec<Query> {
    let leaves = model.leaves();
    (0..n)
        .map(|id| {
            let topic = leaves[rng.gen_range(0..leaves.len())];
            generate_query(model, id, topic, length_model, rng)
        })
        .collect()
}

fn generate_query<R: Rng + ?Sized>(
    model: &CorpusModel,
    id: usize,
    topic: CategoryId,
    length_model: QueryLengthModel,
    rng: &mut R,
) -> Query {
    let target_len = length_model.sample_len(rng);
    let mut terms: Vec<TermId> = Vec::with_capacity(target_len);
    let mut content_terms: Vec<TermId> = Vec::new();
    // Draw until we have `target_len` *distinct* words (bounded retries so a
    // tiny vocabulary cannot loop forever).
    let mut attempts = 0;
    while terms.len() < target_len && attempts < target_len * 20 {
        attempts += 1;
        // The first word is always a *specific* (tail) topical term so every
        // query has a content word; other words are either further specific
        // terms, broad (head) topical context, or background phrasing.
        let (term, specific) = if terms.is_empty() || rng.gen::<f64>() < 0.35 {
            (model.sample_topic_query_token(topic, 1.0, rng), true)
        } else if rng.gen::<f64>() < 0.55 {
            (model.sample_topic_query_token(topic, 0.0, rng), false)
        } else {
            (model.sample_background_token(rng), false)
        };
        if terms.contains(&term) {
            continue;
        }
        terms.push(term);
        // Only the specific terms define relevance: a document about the
        // broad topic that never mentions the specific need is not relevant
        // — mirroring how TREC assessors read narrow topic statements.
        if specific {
            content_terms.push(term);
        }
    }
    Query {
        id,
        terms,
        content_terms,
        topic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TopicModelConfig;
    use dbselect_core::hierarchy::Hierarchy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use textindex::TermDict;

    fn model() -> CorpusModel {
        let mut dict = TermDict::new();
        let config = TopicModelConfig {
            global_vocab: 300,
            node_vocab: 60,
            db_vocab: 10,
            ..Default::default()
        };
        CorpusModel::new(Hierarchy::odp_like(), config, &mut dict)
    }

    #[test]
    fn short_queries_match_trec6_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let lens: Vec<usize> = (0..5000)
            .map(|_| QueryLengthModel::TrecShort.sample_len(&mut rng))
            .collect();
        assert!(lens.iter().all(|&l| (2..=5).contains(&l)));
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((mean - 2.75).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn long_queries_match_trec4_statistics() {
        let mut rng = StdRng::seed_from_u64(12);
        let lens: Vec<usize> = (0..5000)
            .map(|_| QueryLengthModel::TrecLong.sample_len(&mut rng))
            .collect();
        assert!(lens.iter().all(|&l| (8..=34).contains(&l)));
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((14.0..20.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn queries_have_distinct_terms_and_content_words() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(13);
        for q in generate_queries(&m, 30, QueryLengthModel::TrecShort, &mut rng) {
            let mut sorted = q.terms.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), q.terms.len(), "terms distinct");
            assert!(
                !q.content_terms.is_empty(),
                "every query has a content term"
            );
            for c in &q.content_terms {
                assert!(q.terms.contains(c));
            }
        }
    }

    #[test]
    fn query_topics_are_leaves() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(14);
        let leaves = m.leaves().to_vec();
        for q in generate_queries(&m, 20, QueryLengthModel::TrecLong, &mut rng) {
            assert!(leaves.contains(&q.topic));
        }
    }
}
