//! Library backing the `dbselect` command-line tool.
//!
//! The CLI turns directories of plain-text files into "uncooperative"
//! databases, profiles them exactly the way the paper's metasearcher would
//! (query-based sampling, size and frequency estimation), persists the
//! result as a [`CollectionStore`], and routes queries against it with
//! adaptive shrinkage.
//!
//! Everything is a plain function over a store so the commands are unit
//! testable; `main.rs` only parses arguments.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use broker::{Catalog, CatalogEntry, SelectionEngine, DEFAULT_CACHE_CAPACITY};
use dbselect_core::category_summary::CategoryWeighting;
use dbselect_core::hierarchy::Hierarchy;
use dbselect_core::summary::ContentSummary;
use sampling::{profile_qbs_many, PipelineConfig, QbsConfig, RefreshScheduler};
use selection::{AdaptiveConfig, BGloss, Cori, Lm, SelectionAlgorithm, ShrinkageMode};
use store::catalog::StoredCatalog;
use store::delta::ChainWriter;
use store::refresh::RefreshSession;
use store::snapshot::ServingSnapshot;
use store::{CollectionStore, StoredDatabase};
use textindex::{Analyzer, Document, IndexedDatabase, TermDict};

/// One database to index: a name, a category path, and a directory of text
/// files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbSpec {
    /// Database name.
    pub name: String,
    /// Slash-separated category path (e.g. `Health/Heart`).
    pub category: String,
    /// Directory whose files become the database's documents.
    pub dir: String,
}

impl DbSpec {
    /// Parse a `name=Category/Path=directory` argument.
    pub fn parse(arg: &str) -> Result<Self, String> {
        let mut parts = arg.splitn(3, '=');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(name), Some(category), Some(dir)) if !name.is_empty() && !dir.is_empty() => {
                Ok(DbSpec {
                    name: name.to_string(),
                    category: category.to_string(),
                    dir: dir.to_string(),
                })
            }
            _ => Err(format!("expected NAME=CATEGORY/PATH=DIR, got `{arg}`")),
        }
    }
}

/// Indexing options.
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// Target QBS sample size (ignored with `full`).
    pub sample_size: usize,
    /// Build *perfect* summaries by reading every document (cooperative
    /// mode) instead of sampling.
    pub full: bool,
    /// Sampling seed.
    pub seed: u64,
    /// Profiling threads (results are thread-count independent).
    pub threads: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        IndexOptions {
            sample_size: 300,
            full: false,
            seed: 42,
            threads,
        }
    }
}

/// Read every regular file in `dir` (sorted by name for determinism) as one
/// document.
fn read_documents(
    dir: &Path,
    analyzer: &Analyzer,
    dict: &mut TermDict,
) -> io::Result<Vec<Document>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut docs = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        docs.push(Document::from_text(i as u32, &text, analyzer, dict));
    }
    Ok(docs)
}

/// `dbselect index`: profile the given directories and build a store.
pub fn build_store(specs: &[DbSpec], options: &IndexOptions) -> io::Result<CollectionStore> {
    let analyzer = Analyzer::english();
    let mut dict = TermDict::new();
    let mut hierarchy = Hierarchy::new("Root");

    // Load all databases first (the dictionary is shared).
    let mut loaded = Vec::with_capacity(specs.len());
    for spec in specs {
        let docs = read_documents(Path::new(&spec.dir), &analyzer, &mut dict)?;
        if docs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{}: no readable documents in {}", spec.name, spec.dir),
            ));
        }
        let category = hierarchy.ensure_path(&spec.category);
        loaded.push((
            spec.name.clone(),
            category,
            IndexedDatabase::new(spec.name.clone(), docs),
        ));
    }

    // The QBS bootstrap lexicon: the most document-frequent words across
    // the collection (standing in for an English dictionary).
    let mut df_totals: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (_, _, db) in &loaded {
        for (term, list) in db.index().terms() {
            *df_totals.entry(term).or_insert(0) += list.document_frequency();
        }
    }
    let mut by_df: Vec<(usize, u32)> = df_totals.into_iter().map(|(t, c)| (c, t)).collect();
    by_df.sort_unstable_by(|a, b| b.cmp(a));
    let lexicon: Vec<u32> = by_df.into_iter().take(2000).map(|(_, t)| t).collect();

    let pipeline = PipelineConfig {
        frequency_estimation: true,
        qbs: QbsConfig {
            target_sample_size: options.sample_size,
            ..Default::default()
        },
        ..Default::default()
    };
    let databases = if options.full {
        loaded
            .into_iter()
            .map(|(name, classification, db)| StoredDatabase {
                name,
                classification,
                summary: ContentSummary::perfect(&db),
                sample_docs: Vec::new(),
            })
            .collect()
    } else {
        let dbs: Vec<&IndexedDatabase> = loaded.iter().map(|(_, _, db)| db).collect();
        let profiles = profile_qbs_many(&dbs, &lexicon, &pipeline, options.seed, options.threads);
        loaded
            .iter()
            .zip(profiles)
            .map(|((name, classification, _), profile)| StoredDatabase {
                name: name.clone(),
                classification: *classification,
                summary: profile.summary,
                sample_docs: profile.sample.docs.into_iter().map(|d| d.tokens).collect(),
            })
            .collect()
    };
    Ok(CollectionStore {
        dict,
        hierarchy,
        databases,
    })
}

/// Which scoring algorithm `dbselect select` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CliAlgorithm {
    /// bGlOSS.
    BGloss,
    /// CORI (default).
    #[default]
    Cori,
    /// Language modelling.
    Lm,
    /// ReDDE over the stored samples (no shrinkage; requires a store built
    /// by sampling, not `--full`).
    Redde,
}

impl CliAlgorithm {
    /// Parse a `--algo` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "bgloss" => Ok(CliAlgorithm::BGloss),
            "cori" => Ok(CliAlgorithm::Cori),
            "lm" => Ok(CliAlgorithm::Lm),
            "redde" => Ok(CliAlgorithm::Redde),
            other => Err(format!(
                "unknown algorithm `{other}` (bgloss|cori|lm|redde)"
            )),
        }
    }
}

/// Parse a `--shrinkage` value.
pub fn parse_shrinkage(s: &str) -> Result<ShrinkageMode, String> {
    match s {
        "adaptive" => Ok(ShrinkageMode::Adaptive),
        "always" => Ok(ShrinkageMode::Always),
        "never" => Ok(ShrinkageMode::Never),
        other => Err(format!(
            "unknown shrinkage mode `{other}` (adaptive|always|never)"
        )),
    }
}

/// Tokenize query words against a dictionary, deduplicating and
/// collecting words the profiler never saw.
fn analyze_query(
    dict: &TermDict,
    analyzer: &Analyzer,
    query_words: &[String],
) -> (Vec<u32>, Vec<String>) {
    let mut query = Vec::new();
    let mut unknown = Vec::new();
    for word in query_words {
        match analyzer.analyze_term(word).and_then(|t| dict.lookup(&t)) {
            Some(id) if !query.contains(&id) => query.push(id),
            Some(_) => {}
            None => unknown.push(word.clone()),
        }
    }
    (query, unknown)
}

/// Instantiate a summary-based scorer (everything but ReDDE).
fn build_algorithm(
    store: &CollectionStore,
    algo: CliAlgorithm,
) -> Arc<dyn SelectionAlgorithm + Send + Sync> {
    match algo {
        CliAlgorithm::BGloss => Arc::new(BGloss),
        CliAlgorithm::Cori => Arc::new(Cori::default()),
        CliAlgorithm::Lm => Arc::new(Lm::new(0.5, &store.root_summary(CategoryWeighting::BySize))),
        CliAlgorithm::Redde => unreachable!("ReDDE is not summary-based"),
    }
}

/// Render one routed ranking (top `k`) into `out` from columnar name /
/// category tables (the snapshot's layout).
fn render_ranking_columns(
    out: &mut String,
    names: &[String],
    categories: &[String],
    outcome: &selection::AdaptiveOutcome,
    k: usize,
) {
    for r in outcome.ranking.iter().take(k) {
        let marker = if outcome.used_shrinkage[r.index] {
            " [shrunk]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:<20} {:>12.6}  ({}){marker}",
            names[r.index], r.score, categories[r.index],
        );
    }
    if outcome.ranking.is_empty() {
        let _ = writeln!(out, "  (no database has evidence for this query)");
    }
}

/// Render one routed ranking (top `k`) into `out`, resolving names and
/// categories through the store.
fn render_ranking(
    out: &mut String,
    store: &CollectionStore,
    outcome: &selection::AdaptiveOutcome,
    k: usize,
) {
    for r in outcome.ranking.iter().take(k) {
        let db = &store.databases[r.index];
        let marker = if outcome.used_shrinkage[r.index] {
            " [shrunk]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:<20} {:>12.6}  ({}){marker}",
            db.name,
            r.score,
            store.hierarchy.full_name(db.classification),
        );
    }
    if outcome.ranking.is_empty() {
        let _ = writeln!(out, "  (no database has evidence for this query)");
    }
}

/// `dbselect select`: rank databases for a query. Returns the rendered
/// report.
pub fn select(
    store: &CollectionStore,
    query_words: &[String],
    algo: CliAlgorithm,
    shrinkage: ShrinkageMode,
    k: usize,
    seed: u64,
) -> String {
    let analyzer = Analyzer::english();
    let (query, unknown) = analyze_query(&store.dict, &analyzer, query_words);
    let mut out = String::new();
    if !unknown.is_empty() {
        let _ = writeln!(
            out,
            "note: dropping words never seen while profiling: {unknown:?}"
        );
    }
    if query.is_empty() {
        let _ = writeln!(out, "no usable query words; nothing selected");
        return out;
    }

    if algo == CliAlgorithm::Redde {
        return select_redde(store, &query, k, out);
    }

    // One-shot serving: freeze a catalog for this store and route through
    // the broker engine (bit-identical to scoring every summary directly).
    let shrunk = store.shrink_all(CategoryWeighting::BySize);
    let entries: Vec<CatalogEntry> = store
        .databases
        .iter()
        .zip(shrunk)
        .map(|(db, shrunk)| CatalogEntry {
            name: db.name.clone(),
            unshrunk: db.summary.clone(),
            shrunk,
        })
        .collect();
    let catalog = Arc::new(Catalog::build(entries));
    let algorithm = build_algorithm(store, algo);
    let config = AdaptiveConfig {
        mode: shrinkage,
        ..Default::default()
    };
    let engine = SelectionEngine::new(
        catalog,
        Arc::clone(&algorithm),
        config,
        DEFAULT_CACHE_CAPACITY,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let outcome = engine.route(&query, &mut rng);

    let _ = writeln!(
        out,
        "top databases ({} scoring, {shrinkage:?} shrinkage):",
        algorithm.name()
    );
    render_ranking(&mut out, store, &outcome, k);
    out
}

/// Options for `dbselect route`.
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Scoring algorithm (ReDDE is not supported — a catalog stores
    /// summaries, not samples).
    pub algo: CliAlgorithm,
    /// Shrinkage policy.
    pub shrinkage: ShrinkageMode,
    /// Databases reported per query.
    pub k: usize,
    /// Base seed; query `i` draws from an RNG derived from `(seed, i)`.
    pub seed: u64,
    /// Worker threads (results are thread-count independent).
    pub threads: usize,
}

impl Default for RouteOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        RouteOptions {
            algo: CliAlgorithm::default(),
            shrinkage: ShrinkageMode::Adaptive,
            k: 5,
            seed: 42,
            threads,
        }
    }
}

/// `dbselect route`: serve a batch of queries (one per line) against a
/// serving snapshot (v2, or a v1 catalog already migrated through
/// [`ServingSnapshot::load_any`]). The shrunk summaries come pre-frozen
/// from the snapshot — no EM, no rebuild at serving time. Returns the
/// rendered report.
pub fn route(snapshot: &ServingSnapshot, query_lines: &[String], options: &RouteOptions) -> String {
    let mut out = String::new();
    if options.algo == CliAlgorithm::Redde {
        let _ = writeln!(
            out,
            "ReDDE needs raw samples; use `dbselect select` on a store"
        );
        return out;
    }
    let analyzer = Analyzer::english();
    let catalog = Arc::new(snapshot.catalog.clone());
    let algorithm: Arc<dyn SelectionAlgorithm + Send + Sync> = match options.algo {
        CliAlgorithm::BGloss => Arc::new(BGloss),
        CliAlgorithm::Cori => Arc::new(Cori::default()),
        CliAlgorithm::Lm => Arc::new(Lm::from_global_map(
            0.5,
            snapshot.lm_global.iter().copied().collect(),
        )),
        CliAlgorithm::Redde => unreachable!("ReDDE is not summary-based"),
    };
    let config = AdaptiveConfig {
        mode: options.shrinkage,
        ..Default::default()
    };
    let engine = SelectionEngine::new(
        Arc::clone(&catalog),
        Arc::clone(&algorithm),
        config,
        DEFAULT_CACHE_CAPACITY,
    );

    // Tokenize every line up front so the batch can be routed in parallel.
    let parsed: Vec<(String, Vec<u32>, Vec<String>)> = query_lines
        .iter()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            let words: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let (query, unknown) = analyze_query(&snapshot.dict, &analyzer, &words);
            (line.trim().to_string(), query, unknown)
        })
        .collect();
    let queries: Vec<Vec<u32>> = parsed.iter().map(|(_, q, _)| q.clone()).collect();
    let latencies = server::metrics::Histogram::latency();
    let started = Instant::now();
    let outcomes = engine.route_batch_observed(&queries, options.seed, options.threads, |_, d| {
        latencies.observe(d.as_nanos() as u64);
    });
    let wall = started.elapsed();

    let _ = writeln!(
        out,
        "routing {} queries over {} databases ({} scoring, {:?} shrinkage, {} threads)",
        parsed.len(),
        catalog.len(),
        algorithm.name(),
        options.shrinkage,
        options.threads,
    );
    for ((line, query, unknown), outcome) in parsed.iter().zip(&outcomes) {
        let _ = writeln!(out, "\nquery: {line}");
        if !unknown.is_empty() {
            let _ = writeln!(out, "  note: unknown words dropped: {unknown:?}");
        }
        if query.is_empty() {
            let _ = writeln!(out, "  (no usable query words)");
            continue;
        }
        render_ranking_columns(
            &mut out,
            catalog.names(),
            &snapshot.categories,
            outcome,
            options.k,
        );
    }
    // Per-query latency summary (the daemon's histogram type, so the CLI
    // and `/metrics` report percentiles the same way). This line varies
    // run to run — consumers comparing reports should ignore it.
    if !queries.is_empty() {
        let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
        let _ = writeln!(
            out,
            "\nlatency per query: p50 {} | p95 {} | p99 {}  — {} queries in {} ({:.1} queries/s)",
            server::metrics::format_nanos(latencies.percentile(0.50)),
            server::metrics::format_nanos(latencies.percentile(0.95)),
            server::metrics::format_nanos(latencies.percentile(0.99)),
            queries.len(),
            server::metrics::format_nanos(wall.as_nanos() as u64),
            queries.len() as f64 / secs,
        );
    }
    out
}

/// ReDDE selection over the stored samples.
fn select_redde(store: &CollectionStore, query: &[u32], k: usize, mut out: String) -> String {
    use selection::{Redde, ReddeConfig};
    let samples: Vec<Vec<Document>> = store
        .databases
        .iter()
        .map(|db| {
            db.sample_docs
                .iter()
                .enumerate()
                .map(|(i, tokens)| Document::from_tokens(i as u32, tokens.clone()))
                .collect()
        })
        .collect();
    if samples.iter().all(|s| s.is_empty()) {
        let _ = writeln!(
            out,
            "this store holds no samples (built with --full?); ReDDE unavailable"
        );
        return out;
    }
    let sizes: Vec<f64> = store
        .databases
        .iter()
        .map(|db| db.summary.db_size())
        .collect();
    let redde = Redde::build(&samples, &sizes, ReddeConfig::default());
    let ranking = redde.rank(query);
    let _ = writeln!(out, "top databases (ReDDE estimated relevant documents):");
    for r in ranking.iter().take(k) {
        let db = &store.databases[r.index];
        let _ = writeln!(
            out,
            "  {:<20} {:>12.1}  ({})",
            db.name,
            r.score,
            store.hierarchy.full_name(db.classification),
        );
    }
    if ranking.is_empty() {
        let _ = writeln!(out, "  (no sampled document matches the query)");
    }
    out
}

/// `dbselect inspect`: describe the store (or one database). Returns the
/// rendered report.
pub fn inspect(store: &CollectionStore, db_name: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "store: {} databases, {} terms, {} categories",
        store.databases.len(),
        store.dict.len(),
        store.hierarchy.len()
    );
    for db in &store.databases {
        if let Some(filter) = db_name {
            if db.name != filter {
                continue;
            }
        }
        let s = &db.summary;
        let _ = writeln!(
            out,
            "\n{} — {} (|D̂| = {:.0}, sample {} docs, vocabulary {})",
            db.name,
            store.hierarchy.full_name(db.classification),
            s.db_size(),
            s.sample_size(),
            s.vocabulary_size()
        );
        let mut words: Vec<(u32, f64)> = s.iter().map(|(t, st)| (t, st.df)).collect();
        words.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for (term, df) in words.into_iter().take(10) {
            let _ = writeln!(
                out,
                "    {:<20} df ≈ {:>8.1}   p̂(w|D) = {:.4}",
                store.dict.term(term),
                df,
                s.p_df(term)
            );
        }
    }
    out
}

/// Options for `dbselect refresh`.
#[derive(Debug, Clone, Copy)]
pub struct RefreshOptions {
    /// Refresh rounds to run (each appends one delta to the chain).
    pub rounds: usize,
    /// Databases re-probed per round.
    pub budget: usize,
    /// Scheduler + sampling seed.
    pub seed: u64,
    /// Target QBS sample size per re-probe (ignored with `full`).
    pub sample_size: usize,
    /// Re-read every document instead of sampling (cooperative mode).
    pub full: bool,
    /// Profiling threads.
    pub threads: usize,
    /// Pause between rounds (live-refresh pacing for a polling daemon).
    pub round_interval: Option<std::time::Duration>,
}

impl Default for RefreshOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        RefreshOptions {
            rounds: 1,
            budget: 2,
            seed: 42,
            sample_size: 300,
            full: false,
            threads,
            round_interval: None,
        }
    }
}

/// `dbselect refresh`: re-probe a few stale databases per round and
/// append each round as a delta to a snapshot chain.
///
/// The chain directory either does not hold a base yet (one is frozen
/// from the catalog) or holds exactly the base this catalog freezes to —
/// a chain that already has delta rounds cannot be resumed, because the
/// session that wrote them owned the dictionary growth; re-base with a
/// fresh `dbselect freeze` instead. Databases named by a spec are
/// eligible for re-probing (their directories are re-read each round, so
/// drifted content is picked up); catalog databases without a spec stay
/// frozen at their base summaries.
///
/// Returns the per-round report: which databases each round touched, the
/// round's wall time, and the delta's size on disk — the evidence that
/// refresh cost scales with the touched set, not the catalog.
pub fn refresh(
    catalog_path: &str,
    chain_dir: &Path,
    specs: &[DbSpec],
    options: &RefreshOptions,
) -> io::Result<String> {
    let stored = StoredCatalog::load(catalog_path)?;
    let mut session = RefreshSession::new(stored);

    // Map specs onto catalog indices by database name.
    let mut spec_for_db: Vec<Option<&DbSpec>> = vec![None; session.len()];
    for spec in specs {
        match session.names().iter().position(|n| *n == spec.name) {
            Some(db) => spec_for_db[db] = Some(spec),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{}: no such database in {catalog_path}", spec.name),
                ))
            }
        }
    }
    if spec_for_db.iter().all(Option::is_none) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "refresh requires at least one NAME=CATEGORY/PATH=DIR spec",
        ));
    }

    // Create the chain base, or verify an existing base (e.g. one written
    // by `dbselect freeze` into the chain directory) matches the catalog.
    let reference = session.freeze_full();
    let mut writer = if chain_dir.join(store::delta::BASE_FILE).exists() {
        ChainWriter::open_base_only(chain_dir, &reference)?
    } else {
        ChainWriter::create(chain_dir, &reference)?
    };
    drop(reference);

    let mut scheduler = RefreshScheduler::new(session.len(), options.budget, options.seed);
    for db in 0..session.len() {
        scheduler.set_eligible(db, spec_for_db[db].is_some());
        scheduler.set_coverage(db, session.coverage(db));
    }

    let analyzer = Analyzer::english();
    let pipeline = PipelineConfig {
        frequency_estimation: true,
        qbs: QbsConfig {
            target_sample_size: options.sample_size,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "refreshing {} of {} databases per round over {} ({} rounds, seed {})",
        options.budget.min(specs.len()),
        session.len(),
        chain_dir.display(),
        options.rounds,
        options.seed,
    );
    for round in 0..options.rounds {
        let started = Instant::now();
        let picks = scheduler.next_round();
        if picks.is_empty() {
            let _ = writeln!(out, "round {}: nothing eligible to refresh", round + 1);
            continue;
        }

        // Re-read the picked databases' directories (content may have
        // drifted since the last probe), interning new vocabulary into
        // the session dictionary.
        let mut reloaded = Vec::with_capacity(picks.len());
        for &db in &picks {
            let spec = spec_for_db[db].expect("scheduler only picks eligible databases");
            let docs = read_documents(Path::new(&spec.dir), &analyzer, session.dict_mut())?;
            if docs.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{}: no readable documents in {}", spec.name, spec.dir),
                ));
            }
            reloaded.push(IndexedDatabase::new(spec.name.clone(), docs));
        }

        let summaries: Vec<ContentSummary> = if options.full {
            reloaded.iter().map(ContentSummary::perfect).collect()
        } else {
            // The round's QBS bootstrap lexicon: the most document-
            // frequent words across the re-read databases.
            let mut df_totals: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for db in &reloaded {
                for (term, list) in db.index().terms() {
                    *df_totals.entry(term).or_insert(0) += list.document_frequency();
                }
            }
            let mut by_df: Vec<(usize, u32)> = df_totals.into_iter().map(|(t, c)| (c, t)).collect();
            by_df.sort_unstable_by(|a, b| b.cmp(a));
            let lexicon: Vec<u32> = by_df.into_iter().take(2000).map(|(_, t)| t).collect();
            let refs: Vec<&IndexedDatabase> = reloaded.iter().collect();
            // Seed by chain generation so every round probes differently
            // but the whole run stays deterministic.
            let round_seed = options.seed ^ (writer.generation() + 1);
            profile_qbs_many(&refs, &lexicon, &pipeline, round_seed, options.threads)
                .into_iter()
                .map(|profile| profile.summary)
                .collect()
        };

        let mut patches = Vec::with_capacity(picks.len());
        for (&db, summary) in picks.iter().zip(summaries) {
            patches.push(session.apply_probe(db, summary));
            scheduler.set_coverage(db, session.coverage(db));
        }
        let generation = writer.append_round(session.dict(), patches)?;
        let delta_path = chain_dir.join(store::delta::delta_file_name(generation));
        let bytes = std::fs::metadata(&delta_path).map(|m| m.len()).unwrap_or(0);
        let names: Vec<&str> = picks
            .iter()
            .map(|&db| spec_for_db[db].expect("picked databases have specs").name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "round {} -> generation {generation}: refreshed {} in {:.1} ms ({bytes} bytes delta)",
            round + 1,
            names.join(", "),
            started.elapsed().as_secs_f64() * 1e3,
        );
        if let (Some(interval), true) = (options.round_interval, round + 1 < options.rounds) {
            std::thread::sleep(interval);
        }
    }
    let _ = writeln!(
        out,
        "chain tip: generation {} (checksum {:016x})",
        writer.generation(),
        writer.tip_checksum(),
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use store::catalog::StoredCatalog;

    fn write_corpus(root: &Path) {
        let heart = root.join("heart");
        let soccer = root.join("soccer");
        std::fs::create_dir_all(&heart).unwrap();
        std::fs::create_dir_all(&soccer).unwrap();
        let heart_docs = [
            "The heart pumps blood through the arteries",
            "Hypertension strains the heart and raises blood pressure",
            "Cardiac surgery repairs damaged heart valves",
            "Cholesterol narrows the coronary arteries of the heart",
        ];
        let soccer_docs = [
            "The striker scored a goal in the final minute",
            "The league championship went to the home team",
            "A penalty kick decided the soccer match",
        ];
        for (i, text) in heart_docs.iter().enumerate() {
            std::fs::write(heart.join(format!("doc{i}.txt")), text).unwrap();
        }
        for (i, text) in soccer_docs.iter().enumerate() {
            std::fs::write(soccer.join(format!("doc{i}.txt")), text).unwrap();
        }
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dbselect-cli-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn specs(root: &Path) -> Vec<DbSpec> {
        vec![
            DbSpec {
                name: "heart-db".into(),
                category: "Health/Heart".into(),
                dir: root.join("heart").to_string_lossy().into_owned(),
            },
            DbSpec {
                name: "soccer-db".into(),
                category: "Sports/Soccer".into(),
                dir: root.join("soccer").to_string_lossy().into_owned(),
            },
        ]
    }

    #[test]
    fn spec_parsing() {
        let spec = DbSpec::parse("medline=Health/Medicine=/data/medline").unwrap();
        assert_eq!(spec.name, "medline");
        assert_eq!(spec.category, "Health/Medicine");
        assert_eq!(spec.dir, "/data/medline");
        assert!(DbSpec::parse("missing-parts").is_err());
        assert!(DbSpec::parse("=cat=dir").is_err());
    }

    #[test]
    fn index_select_inspect_round_trip() {
        let root = temp_root("e2e");
        write_corpus(&root);
        let options = IndexOptions {
            full: true,
            ..Default::default()
        };
        let store = build_store(&specs(&root), &options).unwrap();
        assert_eq!(store.databases.len(), 2);

        // Save + reload through the file format.
        let path = root.join("collection.store");
        store.save(&path).unwrap();
        let store = CollectionStore::load(&path).unwrap();

        // A heart query selects the heart database first.
        let report = select(
            &store,
            &["hypertension".into(), "blood".into()],
            CliAlgorithm::Cori,
            ShrinkageMode::Adaptive,
            5,
            1,
        );
        let heart_pos = report.find("heart-db").expect("heart-db selected");
        assert!(report.find("soccer-db").is_none_or(|p| p > heart_pos));

        // Inspect mentions both databases and their categories.
        let info = inspect(&store, None);
        assert!(info.contains("Root/Health/Heart"));
        assert!(info.contains("Root/Sports/Soccer"));
        let only = inspect(&store, Some("soccer-db"));
        assert!(only.contains("soccer-db"));
        assert!(!only.contains("heart-db"));

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sampled_indexing_works_too() {
        let root = temp_root("sampled");
        write_corpus(&root);
        let options = IndexOptions {
            sample_size: 3,
            full: false,
            seed: 7,
            threads: 2,
        };
        let store = build_store(&specs(&root), &options).unwrap();
        for db in &store.databases {
            assert!(db.summary.sample_size() <= 3 + 1);
            assert!(db.summary.vocabulary_size() > 0);
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn catalog_route_round_trip() {
        let root = temp_root("route");
        write_corpus(&root);
        let store = build_store(
            &specs(&root),
            &IndexOptions {
                full: true,
                ..Default::default()
            },
        )
        .unwrap();

        // Freeze the shrinkage fit into a v1 catalog, migrate it to a v2
        // snapshot on disk, and reload both ways: `load_any` must route
        // the legacy file and the snapshot identically.
        let path = root.join("collection.catalog");
        StoredCatalog::freeze(store, CategoryWeighting::BySize)
            .save(&path)
            .unwrap();
        let v2_path = root.join("collection.snapshot");
        ServingSnapshot::load_any(&path)
            .unwrap()
            .save(&v2_path)
            .unwrap();
        let frozen = ServingSnapshot::load_any(&v2_path).unwrap();

        let lines = vec![
            "heart blood pressure".to_string(),
            "soccer goal".to_string(),
            String::new(), // blank lines are skipped
            "xylophone".to_string(),
        ];
        let options = RouteOptions {
            k: 2,
            threads: 2,
            ..Default::default()
        };
        let report = route(&frozen, &lines, &options);
        assert!(report.contains("routing 3 queries"), "{report}");
        let heart_section = report.find("query: heart blood pressure").unwrap();
        let soccer_section = report.find("query: soccer goal").unwrap();
        let heart_hit = report[heart_section..soccer_section].find("heart-db");
        assert!(heart_hit.is_some(), "{report}");
        assert!(report.contains("unknown words dropped"), "{report}");

        // Thread count does not change the report.
        let single = route(
            &frozen,
            &lines,
            &RouteOptions {
                threads: 1,
                ..options
            },
        );
        let many = route(
            &frozen,
            &lines,
            &RouteOptions {
                threads: 8,
                ..options
            },
        );
        // The trailing latency summary is wall-clock dependent; rankings
        // must match exactly.
        let strip = |report: &str, threads: &str| -> String {
            report
                .replace(threads, "N threads")
                .lines()
                .filter(|l| !l.starts_with("latency per query:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&single, "1 threads"), strip(&many, "8 threads"));
        assert!(single.contains("latency per query: p50"), "{single}");

        // The legacy v1 catalog file routes identically to its migrated
        // v2 snapshot.
        let from_v1 = ServingSnapshot::load_any(&path).unwrap();
        let v1_report = route(&from_v1, &lines, &options);
        assert_eq!(strip(&report, "2 threads"), strip(&v1_report, "2 threads"));

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn refresh_appends_deltas_that_replay_bit_identically() {
        let root = temp_root("refresh");
        write_corpus(&root);
        let specs = specs(&root);
        let store = build_store(
            &specs,
            &IndexOptions {
                full: true,
                ..Default::default()
            },
        )
        .unwrap();
        let catalog_path = root.join("collection.catalog");
        StoredCatalog::freeze(store, CategoryWeighting::BySize)
            .save(&catalog_path)
            .unwrap();
        let catalog_path = catalog_path.to_string_lossy().into_owned();
        let chain = root.join("chain");

        // Drift the heart database before the first refresh round.
        std::fs::write(
            root.join("heart/doc9.txt"),
            "Arrhythmia monitoring with a wearable electrocardiogram",
        )
        .unwrap();

        let options = RefreshOptions {
            rounds: 2,
            budget: 1,
            seed: 9,
            full: true,
            ..Default::default()
        };
        let report = refresh(&catalog_path, &chain, &specs, &options).unwrap();
        assert!(report.contains("round 1 -> generation 1"), "{report}");
        assert!(report.contains("round 2 -> generation 2"), "{report}");
        assert_eq!(store::delta::chain_tip_generation(&chain).unwrap(), 2);

        // The replayed chain routes the drifted vocabulary to heart-db.
        let loaded = store::delta::load_chain(&chain).unwrap();
        assert_eq!(loaded.generation, 2);
        let report = route(
            &loaded.snapshot,
            &["arrhythmia electrocardiogram".to_string()],
            &RouteOptions {
                threads: 1,
                ..Default::default()
            },
        );
        assert!(report.contains("heart-db"), "{report}");

        // A chain with deltas cannot be resumed (re-base instead).
        let err = refresh(&catalog_path, &chain, &specs, &options).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("re-base"), "{err}");

        // A base written by `dbselect freeze` is accepted as-is...
        let fresh = root.join("fresh-chain");
        std::fs::create_dir_all(&fresh).unwrap();
        let frozen = StoredCatalog::load(&catalog_path).unwrap();
        ServingSnapshot::from_stored(&frozen)
            .save(fresh.join(store::delta::BASE_FILE))
            .unwrap();
        let report = refresh(
            &catalog_path,
            &fresh,
            &specs,
            &RefreshOptions {
                rounds: 1,
                ..options
            },
        )
        .unwrap();
        assert!(report.contains("generation 1"), "{report}");

        // ...but a base from a *different* catalog is rejected.
        let other = root.join("other-chain");
        std::fs::create_dir_all(&other).unwrap();
        std::fs::copy(
            chain.join(store::delta::delta_file_name(1)),
            other.join(store::delta::BASE_FILE),
        )
        .unwrap();
        let err = refresh(&catalog_path, &other, &specs, &options).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("does not match"), "{err}");

        // Unknown spec names fail fast.
        let bogus = DbSpec {
            name: "no-such-db".into(),
            category: "X".into(),
            dir: root.join("heart").to_string_lossy().into_owned(),
        };
        let err = refresh(&catalog_path, &root.join("x-chain"), &[bogus], &options).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unknown_words_are_reported_not_fatal() {
        let root = temp_root("unknown");
        write_corpus(&root);
        let store = build_store(
            &specs(&root),
            &IndexOptions {
                full: true,
                ..Default::default()
            },
        )
        .unwrap();
        let report = select(
            &store,
            &["xylophone".into()],
            CliAlgorithm::BGloss,
            ShrinkageMode::Never,
            5,
            1,
        );
        assert!(report.contains("dropping words"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_directory_is_an_error() {
        let root = temp_root("empty");
        std::fs::create_dir_all(root.join("nothing")).unwrap();
        let spec = DbSpec {
            name: "x".into(),
            category: "A".into(),
            dir: root.join("nothing").to_string_lossy().into_owned(),
        };
        assert!(build_store(&[spec], &IndexOptions::default()).is_err());
        std::fs::remove_dir_all(&root).ok();
    }
}
