//! `dbselect` — profile directories of text files as uncooperative
//! databases, persist their content summaries, and route queries with
//! shrinkage-based database selection.
//!
//! ```text
//! dbselect index --out STORE [--sample N | --full] [--threads N] NAME=CATEGORY/PATH=DIR ...
//! dbselect select --store STORE [--algo bgloss|cori|lm|redde]
//!                 [--shrinkage adaptive|always|never] [-k N] WORD ...
//! dbselect inspect --store STORE [--db NAME]
//! ```

use cli::{build_store, inspect, parse_shrinkage, select, CliAlgorithm, DbSpec, IndexOptions};
use selection::ShrinkageMode;
use store::CollectionStore;

fn main() {
    if let Err(message) = run() {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("index") => cmd_index(&args[1..]),
        Some("select") => cmd_select(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
dbselect — shrinkage-based text database selection

USAGE:
  dbselect index --out STORE [--sample N | --full] [--threads N] NAME=CATEGORY/PATH=DIR ...
  dbselect select --store STORE [--algo bgloss|cori|lm|redde]
                  [--shrinkage adaptive|always|never] [-k N] WORD ...
  dbselect inspect --store STORE [--db NAME]
";

fn cmd_index(args: &[String]) -> Result<(), String> {
    let mut out = None;
    let mut options = IndexOptions::default();
    let mut specs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(next_value(&mut it, "--out")?),
            "--sample" => {
                options.sample_size = next_value(&mut it, "--sample")?
                    .parse()
                    .map_err(|_| "--sample expects an integer".to_string())?;
            }
            "--full" => options.full = true,
            "--threads" => {
                options.threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer".to_string())?;
            }
            "--seed" => {
                options.seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            spec => specs.push(DbSpec::parse(spec)?),
        }
    }
    let out = out.ok_or("index requires --out STORE")?;
    if specs.is_empty() {
        return Err("index requires at least one NAME=CATEGORY/PATH=DIR spec".into());
    }
    let store = build_store(&specs, &options).map_err(|e| e.to_string())?;
    store.save(&out).map_err(|e| e.to_string())?;
    println!(
        "indexed {} databases ({} terms) -> {out}",
        store.databases.len(),
        store.dict.len()
    );
    Ok(())
}

fn cmd_select(args: &[String]) -> Result<(), String> {
    let mut store_path = None;
    let mut algo = CliAlgorithm::default();
    let mut shrinkage = ShrinkageMode::Adaptive;
    let mut k = 5usize;
    let mut seed = 42u64;
    let mut words = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_path = Some(next_value(&mut it, "--store")?),
            "--algo" => algo = CliAlgorithm::parse(&next_value(&mut it, "--algo")?)?,
            "--shrinkage" => shrinkage = parse_shrinkage(&next_value(&mut it, "--shrinkage")?)?,
            "-k" => {
                k = next_value(&mut it, "-k")?
                    .parse()
                    .map_err(|_| "-k expects an integer".to_string())?;
            }
            "--seed" => {
                seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            word => words.push(word.to_string()),
        }
    }
    let store_path = store_path.ok_or("select requires --store STORE")?;
    if words.is_empty() {
        return Err("select requires at least one query word".into());
    }
    let store = CollectionStore::load(&store_path).map_err(|e| e.to_string())?;
    print!("{}", select(&store, &words, algo, shrinkage, k, seed));
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let mut store_path = None;
    let mut db = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_path = Some(next_value(&mut it, "--store")?),
            "--db" => db = Some(next_value(&mut it, "--db")?),
            other => return Err(format!("unknown inspect option `{other}`")),
        }
    }
    let store_path = store_path.ok_or("inspect requires --store STORE")?;
    let store = CollectionStore::load(&store_path).map_err(|e| e.to_string())?;
    print!("{}", inspect(&store, db.as_deref()));
    Ok(())
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next().cloned().ok_or_else(|| format!("missing value for {flag}"))
}
