//! `dbselect` — profile directories of text files as uncooperative
//! databases, persist their content summaries, and route queries with
//! shrinkage-based database selection.
//!
//! ```text
//! dbselect index --out STORE [--sample N | --full] [--threads N] NAME=CATEGORY/PATH=DIR ...
//! dbselect select --store STORE [--algo bgloss|cori|lm|redde]
//!                 [--shrinkage adaptive|always|never] [-k N] WORD ...
//! dbselect catalog --store STORE --out CATALOG [--weighting bysize|uniform]
//! dbselect refresh --catalog CATALOG --chain DIR [--rounds N] [--budget K] NAME=CATEGORY/PATH=DIR ...
//! dbselect route --catalog CATALOG --queries FILE [--algo bgloss|cori|lm]
//!                [--shrinkage adaptive|always|never] [-k N | --k N] [--seed N] [--threads N]
//! dbselect serve (--catalog CATALOG | --tenants DIR) [--addr HOST:PORT]
//!                [--workers N] [--queue N] [--shards N] [--tenant-quota N]
//!                [--deadline-ms N] [--keep-alive-requests N] [--idle-timeout-ms N]
//!                [--cache N]
//! dbselect inspect --store STORE [--db NAME]
//! ```

use cli::{
    build_store, inspect, parse_shrinkage, refresh, route, select, CliAlgorithm, DbSpec,
    IndexOptions, RefreshOptions, RouteOptions,
};
use dbselect_core::category_summary::CategoryWeighting;
use selection::ShrinkageMode;
use store::catalog::StoredCatalog;
use store::snapshot::ServingSnapshot;
use store::CollectionStore;

fn main() {
    if let Err(message) = run() {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("index") => cmd_index(&args[1..]),
        Some("select") => cmd_select(&args[1..]),
        Some("catalog") => cmd_catalog(&args[1..]),
        Some("freeze") => cmd_freeze(&args[1..]),
        Some("refresh") => cmd_refresh(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

const USAGE: &str = "\
dbselect — shrinkage-based text database selection

USAGE:
  dbselect index --out STORE [--sample N | --full] [--threads N] NAME=CATEGORY/PATH=DIR ...
  dbselect select --store STORE [--algo bgloss|cori|lm|redde]
                  [--shrinkage adaptive|always|never] [-k N] WORD ...
  dbselect catalog --store STORE --out CATALOG [--weighting bysize|uniform]
  dbselect freeze (--catalog CATALOG | --store STORE [--weighting bysize|uniform])
                  --out SNAPSHOT
  dbselect refresh --catalog CATALOG --chain DIR [--rounds N] [--budget K]
                   [--seed N] [--sample N | --full] [--threads N]
                   [--round-interval-ms N] NAME=CATEGORY/PATH=DIR ...
  dbselect route --catalog CATALOG --queries FILE [--algo bgloss|cori|lm]
                 [--shrinkage adaptive|always|never] [-k N | --k N] [--seed N] [--threads N]
  dbselect serve (--catalog CATALOG | --tenants DIR | --proxy --backends A,B,..)
                 [--addr HOST:PORT]
                 [--workers N] [--queue N] [--shards N] [--tenant-quota N]
                 [--deadline-ms N] [--keep-alive-requests N] [--idle-timeout-ms N]
                 [--cache N] [--retry-after-ms N] [--reactor | --legacy-threaded]
                 [--refresh-interval-ms N]
                 [--proxy-retries N] [--hedge-ms N] [--breaker-threshold N]
                 [--breaker-cooldown-ms N] [--health-interval-ms N]
  dbselect inspect --store STORE [--db NAME]

`catalog` runs the shrinkage EM once and freezes the result (summaries,
fitted λ weights) into a serving catalog; `route` loads the catalog — no
EM at serving time — and evaluates a file of queries (one per line) in
parallel. Rankings are independent of --threads.

`freeze` writes a v2 serving snapshot: the columnar catalog (frozen
summaries, posting index, γ exponents, LM global model) in final serving
form, so loading is a checksummed array read with no rebuilding. It
accepts a v1 catalog (migration) or a store (EM + freeze in one step).
`route` and `serve` accept either format and detect it by magic bytes.

`refresh` runs live summary refresh: each round, a budgeted scheduler
picks the stalest / least-covered databases named by a spec, re-probes
their directories with QBS (or --full), re-fits **only their** shrinkage
mixtures against the pinned base epoch, and appends the touched rows as
a delta to the snapshot chain in --chain DIR (base.snap + numbered
deltas). Replaying the chain is bit-identical to a full freeze of the
same post-refresh state; refresh cost scales with the touched set, not
the catalog. `route` and `serve` accept the chain directory anywhere a
catalog path is accepted. A chain that already holds deltas cannot be
resumed — re-base with a fresh `dbselect freeze`.

`serve` starts `dbselectd`, an HTTP daemon over a frozen catalog:
POST /route and /route_batch rank databases (bit-identical to `route`),
GET /healthz and /metrics report status, POST /admin/reload hot-swaps
the catalog, POST /admin/shutdown exits cleanly. Connections are
persistent (HTTP/1.1 keep-alive): --keep-alive-requests caps requests
per connection, --idle-timeout-ms bounds the wait between them, and
--deadline-ms bounds each request end to end, reads and writes included.
By default connection I/O runs on an event-driven reactor (--reactor)
that multiplexes every socket on one thread while --workers threads
execute requests; --legacy-threaded restores the thread-per-connection
path. Both serve bit-identical responses. --refresh-interval-ms N polls
each tenant's source every N ms and hot-swaps newer delta-chain
generations in automatically (no /admin/reload needed); swaps are kept
strictly monotone and a broken chain leaves the serving generation
untouched (counted in dbselectd_catalog_load_failures_total).

`serve --tenants DIR` hosts every snapshot in DIR (one tenant per
*.snap/*.cat file, named by its stem) behind /t/<name>/route,
/t/<name>/route_batch and /t/<name>/admin/reload; bare paths alias the
tenant named `default` (or the first, by name). --tenant-quota caps
in-flight routing requests per tenant (503 + Retry-After beyond it);
--shards N scatters each query's scoring phase across N catalog shards
and merges — rankings stay bit-identical to --shards 1.

`serve --proxy --backends A,B,..` starts a federated proxy instead of a
catalog engine: /route and /route_batch scatter to the listed shard
daemons (each started with --shards N over the same snapshot) and merge
the partial rankings, bit-identically to a single monolithic daemon
when every backend is healthy. Failed shard calls are retried
(--proxy-retries, exponential backoff), slow ones hedged (--hedge-ms,
0 disables, default adapts to the backend's p99), and flapping
backends are fenced by per-backend circuit breakers
(--breaker-threshold consecutive failures open the breaker for
--breaker-cooldown-ms; a background health prober every
--health-interval-ms closes it again). When some — but not all —
shards fail, the proxy degrades gracefully: it merges what it has and
marks the response `\"degraded\": true` with the missing shard ids.
--retry-after-ms sets the Retry-After hint on 503s in every serve mode.
";

fn cmd_index(args: &[String]) -> Result<(), String> {
    let mut out = None;
    let mut options = IndexOptions::default();
    let mut specs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(next_value(&mut it, "--out")?),
            "--sample" => {
                options.sample_size = next_value(&mut it, "--sample")?
                    .parse()
                    .map_err(|_| "--sample expects an integer".to_string())?;
            }
            "--full" => options.full = true,
            "--threads" => {
                options.threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer".to_string())?;
            }
            "--seed" => {
                options.seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            spec => specs.push(DbSpec::parse(spec)?),
        }
    }
    let out = out.ok_or("index requires --out STORE")?;
    if specs.is_empty() {
        return Err("index requires at least one NAME=CATEGORY/PATH=DIR spec".into());
    }
    let store = build_store(&specs, &options).map_err(|e| e.to_string())?;
    store.save(&out).map_err(|e| e.to_string())?;
    println!(
        "indexed {} databases ({} terms) -> {out}",
        store.databases.len(),
        store.dict.len()
    );
    Ok(())
}

fn cmd_select(args: &[String]) -> Result<(), String> {
    let mut store_path = None;
    let mut algo = CliAlgorithm::default();
    let mut shrinkage = ShrinkageMode::Adaptive;
    let mut k = 5usize;
    let mut seed = 42u64;
    let mut words = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_path = Some(next_value(&mut it, "--store")?),
            "--algo" => algo = CliAlgorithm::parse(&next_value(&mut it, "--algo")?)?,
            "--shrinkage" => shrinkage = parse_shrinkage(&next_value(&mut it, "--shrinkage")?)?,
            "-k" => {
                k = next_value(&mut it, "-k")?
                    .parse()
                    .map_err(|_| "-k expects an integer".to_string())?;
            }
            "--seed" => {
                seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            word => words.push(word.to_string()),
        }
    }
    let store_path = store_path.ok_or("select requires --store STORE")?;
    if words.is_empty() {
        return Err("select requires at least one query word".into());
    }
    let store = CollectionStore::load(&store_path).map_err(|e| e.to_string())?;
    print!("{}", select(&store, &words, algo, shrinkage, k, seed));
    Ok(())
}

fn cmd_catalog(args: &[String]) -> Result<(), String> {
    let mut store_path = None;
    let mut out = None;
    let mut weighting = CategoryWeighting::BySize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_path = Some(next_value(&mut it, "--store")?),
            "--out" => out = Some(next_value(&mut it, "--out")?),
            "--weighting" => {
                weighting = match next_value(&mut it, "--weighting")?.as_str() {
                    "bysize" => CategoryWeighting::BySize,
                    "uniform" => CategoryWeighting::Uniform,
                    other => return Err(format!("unknown weighting `{other}` (bysize|uniform)")),
                };
            }
            other => return Err(format!("unknown catalog option `{other}`")),
        }
    }
    let store_path = store_path.ok_or("catalog requires --store STORE")?;
    let out = out.ok_or("catalog requires --out CATALOG")?;
    let store = CollectionStore::load(&store_path).map_err(|e| e.to_string())?;
    let frozen = StoredCatalog::freeze(store, weighting);
    frozen.save(&out).map_err(|e| e.to_string())?;
    println!(
        "froze {} databases ({} terms, {:?} weighting, λ fit recorded) -> {out}",
        frozen.store.databases.len(),
        frozen.store.dict.len(),
        frozen.weighting,
    );
    Ok(())
}

fn cmd_freeze(args: &[String]) -> Result<(), String> {
    let mut catalog_path = None;
    let mut store_path = None;
    let mut out = None;
    let mut weighting = CategoryWeighting::BySize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--catalog" => catalog_path = Some(next_value(&mut it, "--catalog")?),
            "--store" => store_path = Some(next_value(&mut it, "--store")?),
            "--out" => out = Some(next_value(&mut it, "--out")?),
            "--weighting" => {
                weighting = match next_value(&mut it, "--weighting")?.as_str() {
                    "bysize" => CategoryWeighting::BySize,
                    "uniform" => CategoryWeighting::Uniform,
                    other => return Err(format!("unknown weighting `{other}` (bysize|uniform)")),
                };
            }
            other => return Err(format!("unknown freeze option `{other}`")),
        }
    }
    let out = out.ok_or("freeze requires --out SNAPSHOT")?;
    let frozen = match (catalog_path, store_path) {
        (Some(catalog), None) => StoredCatalog::load(&catalog).map_err(|e| e.to_string())?,
        (None, Some(store)) => {
            let store = CollectionStore::load(&store).map_err(|e| e.to_string())?;
            StoredCatalog::freeze(store, weighting)
        }
        _ => {
            return Err("freeze requires exactly one of --catalog CATALOG or --store STORE".into())
        }
    };
    let snapshot = ServingSnapshot::from_stored(&frozen);
    snapshot.save(&out).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "froze {} databases ({} terms, {} posting terms) -> {out} ({bytes} bytes, v3 snapshot)",
        snapshot.catalog.len(),
        snapshot.dict.len(),
        snapshot.catalog.posting_index().len(),
    );
    Ok(())
}

fn cmd_refresh(args: &[String]) -> Result<(), String> {
    let mut catalog_path = None;
    let mut chain_dir = None;
    let mut options = RefreshOptions::default();
    let mut specs = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--catalog" => catalog_path = Some(next_value(&mut it, "--catalog")?),
            "--chain" => chain_dir = Some(next_value(&mut it, "--chain")?),
            "--rounds" => {
                options.rounds = next_value(&mut it, "--rounds")?
                    .parse()
                    .map_err(|_| "--rounds expects an integer".to_string())?;
            }
            "--budget" => {
                options.budget = next_value(&mut it, "--budget")?
                    .parse()
                    .map_err(|_| "--budget expects an integer".to_string())?;
            }
            "--seed" => {
                options.seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--sample" => {
                options.sample_size = next_value(&mut it, "--sample")?
                    .parse()
                    .map_err(|_| "--sample expects an integer".to_string())?;
            }
            "--full" => options.full = true,
            "--threads" => {
                options.threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer".to_string())?;
            }
            "--round-interval-ms" => {
                let ms: u64 = next_value(&mut it, "--round-interval-ms")?
                    .parse()
                    .map_err(|_| "--round-interval-ms expects an integer".to_string())?;
                options.round_interval = Some(std::time::Duration::from_millis(ms));
            }
            spec => specs.push(DbSpec::parse(spec)?),
        }
    }
    let catalog_path = catalog_path.ok_or("refresh requires --catalog CATALOG")?;
    let chain_dir = chain_dir.ok_or("refresh requires --chain DIR")?;
    let report = refresh(
        &catalog_path,
        std::path::Path::new(&chain_dir),
        &specs,
        &options,
    )
    .map_err(|e| e.to_string())?;
    print!("{report}");
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let mut catalog_path = None;
    let mut queries_path = None;
    let mut options = RouteOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--catalog" => catalog_path = Some(next_value(&mut it, "--catalog")?),
            "--queries" => queries_path = Some(next_value(&mut it, "--queries")?),
            "--algo" => options.algo = CliAlgorithm::parse(&next_value(&mut it, "--algo")?)?,
            "--shrinkage" => {
                options.shrinkage = parse_shrinkage(&next_value(&mut it, "--shrinkage")?)?;
            }
            "-k" | "--k" => {
                options.k = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| format!("{arg} expects an integer"))?;
            }
            "--seed" => {
                options.seed = next_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--threads" => {
                options.threads = next_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects an integer".to_string())?;
            }
            other => return Err(format!("unknown route option `{other}`")),
        }
    }
    let catalog_path = catalog_path.ok_or("route requires --catalog CATALOG")?;
    let queries_path = queries_path.ok_or("route requires --queries FILE")?;
    let frozen =
        ServingSnapshot::load_any(&catalog_path).map_err(|e| format!("{catalog_path}: {e}"))?;
    let lines: Vec<String> = std::fs::read_to_string(&queries_path)
        .map_err(|e| format!("{queries_path}: {e}"))?
        .lines()
        .map(str::to_string)
        .collect();
    print!("{}", route(&frozen, &lines, &options));
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut catalog_path = None;
    let mut tenants_dir = None;
    let mut proxy = false;
    let mut proxy_config = server::ProxyConfig::default();
    let mut config = server::ServerConfig {
        addr: "127.0.0.1:7700".to_string(),
        ..Default::default()
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--catalog" => catalog_path = Some(next_value(&mut it, "--catalog")?),
            "--tenants" => tenants_dir = Some(next_value(&mut it, "--tenants")?),
            "--addr" => config.addr = next_value(&mut it, "--addr")?,
            "--workers" => {
                config.workers = next_value(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?;
            }
            "--queue" => {
                config.queue_capacity = next_value(&mut it, "--queue")?
                    .parse()
                    .map_err(|_| "--queue expects an integer".to_string())?;
            }
            "--deadline-ms" => {
                let ms: u64 = next_value(&mut it, "--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms expects an integer".to_string())?;
                config.deadline = std::time::Duration::from_millis(ms);
            }
            "--keep-alive-requests" => {
                config.keep_alive_requests = next_value(&mut it, "--keep-alive-requests")?
                    .parse()
                    .map_err(|_| "--keep-alive-requests expects an integer".to_string())?;
            }
            "--idle-timeout-ms" => {
                let ms: u64 = next_value(&mut it, "--idle-timeout-ms")?
                    .parse()
                    .map_err(|_| "--idle-timeout-ms expects an integer".to_string())?;
                config.idle_timeout = std::time::Duration::from_millis(ms);
            }
            "--cache" => {
                config.cache_capacity = next_value(&mut it, "--cache")?
                    .parse()
                    .map_err(|_| "--cache expects an integer (0 = unbounded)".to_string())?;
            }
            "--shards" => {
                config.shards = next_value(&mut it, "--shards")?
                    .parse()
                    .map_err(|_| "--shards expects an integer".to_string())?;
            }
            "--tenant-quota" => {
                config.tenant_quota = next_value(&mut it, "--tenant-quota")?
                    .parse()
                    .map_err(|_| "--tenant-quota expects an integer (0 = unlimited)".to_string())?;
            }
            "--retry-after-ms" => {
                let ms: u64 = next_value(&mut it, "--retry-after-ms")?
                    .parse()
                    .map_err(|_| "--retry-after-ms expects an integer".to_string())?;
                config.retry_after = std::time::Duration::from_millis(ms);
            }
            "--proxy" => proxy = true,
            "--backends" => {
                proxy_config.backends = next_value(&mut it, "--backends")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--proxy-retries" => {
                proxy_config.retries = next_value(&mut it, "--proxy-retries")?
                    .parse()
                    .map_err(|_| "--proxy-retries expects an integer".to_string())?;
            }
            "--hedge-ms" => {
                let ms: u64 = next_value(&mut it, "--hedge-ms")?
                    .parse()
                    .map_err(|_| "--hedge-ms expects an integer (0 = off)".to_string())?;
                proxy_config.hedge = if ms == 0 {
                    server::HedgePolicy::Off
                } else {
                    server::HedgePolicy::Fixed(std::time::Duration::from_millis(ms))
                };
            }
            "--breaker-threshold" => {
                proxy_config.breaker_failures = next_value(&mut it, "--breaker-threshold")?
                    .parse()
                    .map_err(|_| "--breaker-threshold expects an integer".to_string())?;
            }
            "--breaker-cooldown-ms" => {
                let ms: u64 = next_value(&mut it, "--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|_| "--breaker-cooldown-ms expects an integer".to_string())?;
                proxy_config.breaker_cooldown = std::time::Duration::from_millis(ms);
            }
            "--health-interval-ms" => {
                let ms: u64 = next_value(&mut it, "--health-interval-ms")?
                    .parse()
                    .map_err(|_| "--health-interval-ms expects an integer".to_string())?;
                proxy_config.health_interval = std::time::Duration::from_millis(ms);
            }
            "--refresh-interval-ms" => {
                let ms: u64 = next_value(&mut it, "--refresh-interval-ms")?
                    .parse()
                    .map_err(|_| "--refresh-interval-ms expects an integer".to_string())?;
                config.refresh_interval = Some(std::time::Duration::from_millis(ms));
            }
            "--debug-sleep" => config.debug_sleep = true,
            "--reactor" => config.mode = server::ServeMode::Reactor,
            "--legacy-threaded" => config.mode = server::ServeMode::Threaded,
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    if proxy {
        if catalog_path.is_some() || tenants_dir.is_some() {
            return Err("serve --proxy takes neither --catalog nor --tenants".to_string());
        }
        if proxy_config.backends.is_empty() {
            return Err("serve --proxy requires --backends HOST:PORT,HOST:PORT,..".to_string());
        }
        let backends = proxy_config.backends.clone();
        config.proxy = Some(proxy_config);
        let daemon = server::Server::bind_proxy(config).map_err(|e| e.to_string())?;
        println!(
            "dbselectd proxy listening on {} ({} backends: {})",
            daemon.local_addr(),
            backends.len(),
            backends.join(", "),
        );
        return daemon.run().map_err(|e| e.to_string());
    }
    let daemon = match (catalog_path, tenants_dir) {
        (Some(_), Some(_)) => {
            return Err("serve takes either --catalog or --tenants, not both".to_string())
        }
        (None, None) => {
            return Err(
                "serve requires --catalog CATALOG, --tenants DIR, or --proxy --backends"
                    .to_string(),
            )
        }
        (Some(catalog_path), None) => {
            let state = server::state::ServingState::load_sharded(
                &catalog_path,
                config.cache_capacity,
                config.shards,
            )
            .map_err(|e| format!("{catalog_path}: {e}"))?;
            let daemon = server::Server::bind(config, state).map_err(|e| e.to_string())?;
            println!(
                "dbselectd listening on {} (catalog {catalog_path})",
                daemon.local_addr()
            );
            daemon
        }
        (None, Some(dir)) => {
            let manifest = store::manifest::TenantManifest::scan(std::path::Path::new(&dir))
                .map_err(|e| format!("{dir}: {e}"))?;
            let mut states = Vec::with_capacity(manifest.tenants.len());
            for entry in &manifest.tenants {
                let path = entry.path.to_str().ok_or("non-UTF-8 snapshot path")?;
                let state = server::state::ServingState::load_sharded(
                    path,
                    config.cache_capacity,
                    config.shards,
                )
                .map_err(|e| format!("{path}: {e}"))?;
                states.push((entry.name.clone(), state));
            }
            let names: Vec<String> = states.iter().map(|(n, _)| n.clone()).collect();
            let daemon = server::Server::bind_tenants(config, states).map_err(|e| e.to_string())?;
            println!(
                "dbselectd listening on {} ({} tenants from {dir}: {})",
                daemon.local_addr(),
                names.len(),
                names.join(", "),
            );
            daemon
        }
    };
    daemon.run().map_err(|e| e.to_string())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let mut store_path = None;
    let mut db = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_path = Some(next_value(&mut it, "--store")?),
            "--db" => db = Some(next_value(&mut it, "--db")?),
            other => return Err(format!("unknown inspect option `{other}`")),
        }
    }
    let store_path = store_path.ok_or("inspect requires --store STORE")?;
    let store = CollectionStore::load(&store_path).map_err(|e| e.to_string())?;
    print!("{}", inspect(&store, db.as_deref()));
    Ok(())
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("missing value for {flag}"))
}
