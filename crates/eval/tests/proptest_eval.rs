//! Property-based tests for the evaluation metrics: every metric must stay
//! in its documented range for arbitrary summaries, rankings, and samples.

use std::collections::HashMap;

use proptest::prelude::*;

use eval::metrics::{summary_quality, EvaluatedSummary};
use eval::rk::{ideal_relevant, rk};
use eval::stats::{average_ranks, incomplete_beta, paired_t_test, spearman, student_t_sf};

fn word_map() -> impl Strategy<Value = HashMap<u32, f64>> {
    prop::collection::hash_map(0u32..40, 1e-6..1.0f64, 0..25)
}

fn evaluated(words: HashMap<u32, f64>) -> EvaluatedSummary {
    EvaluatedSummary {
        p_df: words.clone(),
        p_tf: words,
    }
}

proptest! {
    /// Recall, precision ∈ [0, 1]; Spearman ∈ [−1, 1]; KL ≥ 0.
    #[test]
    fn metric_ranges(a in word_map(), b in word_map()) {
        let q = summary_quality(&evaluated(a), &evaluated(b));
        for v in [q.weighted_recall, q.unweighted_recall, q.weighted_precision, q.unweighted_precision] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{v}");
        }
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&q.spearman));
        prop_assert!(q.kl_divergence >= 0.0, "KL {}", q.kl_divergence);
    }

    /// A summary compared with itself is perfect on every metric.
    #[test]
    fn self_comparison_is_perfect(a in word_map()) {
        prop_assume!(a.len() >= 2);
        let e = evaluated(a);
        let q = summary_quality(&e, &e);
        prop_assert!((q.weighted_recall - 1.0).abs() < 1e-9);
        prop_assert!((q.unweighted_precision - 1.0).abs() < 1e-9);
        prop_assert!(q.kl_divergence < 1e-9);
    }

    /// `R_k` is within [0, 1] for any ranking, and equals 1 for the ideal
    /// ranking.
    #[test]
    fn rk_bounds(relevant in prop::collection::vec(0u32..100, 1..30), k in 1usize..10) {
        let n = relevant.len();
        let identity: Vec<usize> = (0..n).collect();
        if let Some(v) = rk(&identity, &relevant, k) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
        // Ideal ranking scores exactly 1 whenever defined.
        let mut by_rel: Vec<usize> = (0..n).collect();
        by_rel.sort_by_key(|&i| std::cmp::Reverse(relevant[i]));
        if ideal_relevant(&relevant, k) > 0 {
            prop_assert_eq!(rk(&by_rel, &relevant, k), Some(1.0));
        }
    }

    /// Average ranks are a permutation-invariant assignment summing to
    /// n(n+1)/2.
    #[test]
    fn average_ranks_sum_invariant(xs in prop::collection::vec(-100.0..100.0f64, 1..40)) {
        let ranks = average_ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Spearman is symmetric and bounded.
    #[test]
    fn spearman_symmetric(pairs in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 2..30)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let (Some(a), Some(b)) = (spearman(&xs, &ys), spearman(&ys, &xs)) {
            prop_assert!((a - b).abs() < 1e-9);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a));
        }
    }

    /// The t survival function is a valid tail probability, monotonically
    /// decreasing in t.
    #[test]
    fn t_tail_is_probability(t in 0.0..20.0f64, df in 1.0..200.0f64) {
        let tail = student_t_sf(t, df);
        prop_assert!((0.0..=0.5).contains(&tail), "tail {tail}");
        let tail_further = student_t_sf(t + 1.0, df);
        prop_assert!(tail_further <= tail + 1e-12);
    }

    /// Incomplete beta is a CDF in x: bounded and non-decreasing.
    #[test]
    fn incomplete_beta_is_cdf(a in 0.2..20.0f64, b in 0.2..20.0f64, x in 0.0..1.0f64) {
        let v = incomplete_beta(a, b, x);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
        let v2 = incomplete_beta(a, b, (x + 0.05).min(1.0));
        prop_assert!(v2 >= v - 1e-9);
    }

    /// A paired t-test p-value is in (0, 1].
    #[test]
    fn t_test_p_value_valid(
        a in prop::collection::vec(0.0..1.0f64, 3..40),
        noise in prop::collection::vec(-0.2..0.2f64, 3..40),
    ) {
        let n = a.len().min(noise.len());
        let b: Vec<f64> = a.iter().zip(&noise).take(n).map(|(x, e)| x + e).collect();
        if let Some(result) = paired_t_test(&a[..n], &b) {
            prop_assert!(result.p_value > 0.0 && result.p_value <= 1.0, "p {}", result.p_value);
            prop_assert_eq!(result.df, n - 1);
        }
    }
}
