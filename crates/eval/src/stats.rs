//! Statistical utilities: means, ranks with ties, Spearman rank
//! correlation, and the paired t-test the paper uses for its significance
//! claims ("a paired t-test showed significance at the 0.01% level").

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample variance with Bessel's correction (0 for fewer than 2 values).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Fractional ranks (1-based) with ties receiving their average rank —
/// the convention Spearman's coefficient requires.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average of ranks i+1..=j+1.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation coefficient between two paired samples,
/// computed as the Pearson correlation of average ranks (handles ties).
/// Returns `None` for fewer than 2 pairs or zero rank variance.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return None;
    }
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    pearson(&rx, &ry)
}

/// Pearson correlation. `None` when either side has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    let _ = n;
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Result of a paired t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedTTest {
    /// The t statistic of the mean difference `a - b`.
    pub t: f64,
    /// Degrees of freedom (`n - 1`).
    pub df: usize,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Mean of the differences.
    pub mean_diff: f64,
}

/// Paired t-test for `a[i] - b[i]`. Returns `None` for fewer than 2 pairs
/// or a zero-variance difference (in which case the samples are identical
/// or deterministically offset).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<PairedTTest> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let md = mean(&diffs);
    let var = sample_variance(&diffs);
    if var <= 0.0 {
        return None;
    }
    let t = md / (var / n as f64).sqrt();
    let df = n - 1;
    let p_value = 2.0 * student_t_sf(t.abs(), df as f64);
    Some(PairedTTest {
        t,
        df,
        p_value,
        mean_diff: md,
    })
}

/// Survival function `P(T > t)` of Student's t distribution with `df`
/// degrees of freedom, via the regularized incomplete beta function.
pub fn student_t_sf(t: f64, df: f64) -> f64 {
    if t <= 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    0.5 * incomplete_beta(df / 2.0, 0.5, x)
}

/// Regularized incomplete beta function `I_x(a, b)` via the standard
/// continued-fraction expansion (Numerical Recipes' `betacf` scheme).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((sample_variance(&[2.0, 4.0, 6.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn average_ranks_handle_ties() {
        let ranks = average_ranks(&[10.0, 20.0, 20.0, 5.0]);
        assert_eq!(ranks, vec![2.0, 3.5, 3.5, 1.0]);
    }

    #[test]
    fn spearman_perfect_and_reverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [9.0, 7.0, 5.0, 3.0];
        assert!((spearman(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [3.0, 8.0, 1.0, 6.0, 2.0, 7.0, 4.0, 5.0];
        let rho = spearman(&xs, &ys).unwrap();
        assert!(rho.abs() < 0.5, "rho {rho}");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        let v = incomplete_beta(2.0, 3.0, 0.3);
        let w = incomplete_beta(3.0, 2.0, 0.7);
        assert!((v + w - 1.0).abs() < 1e-12);
        assert_eq!(incomplete_beta(1.0, 1.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(1.0, 1.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_distribution_tail_known_value() {
        // For df → large, t = 1.96 gives one-sided tail ≈ 0.025.
        let tail = student_t_sf(1.96, 1000.0);
        assert!((tail - 0.025).abs() < 0.002, "tail {tail}");
        // df = 1 (Cauchy): P(T > 1) = 0.25.
        assert!((student_t_sf(1.0, 1.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn paired_t_test_detects_consistent_improvement() {
        let a: Vec<f64> = (0..30).map(|i| 0.6 + 0.01 * (i % 5) as f64).collect();
        let b: Vec<f64> = a
            .iter()
            .map(|x| x - 0.05 - 0.001 * (a.len() as f64))
            .collect();
        // Add noise-free but non-constant differences.
        let b: Vec<f64> = b
            .iter()
            .enumerate()
            .map(|(i, x)| x + 0.001 * (i % 3) as f64)
            .collect();
        let result = paired_t_test(&a, &b).unwrap();
        assert!(result.mean_diff > 0.0);
        assert!(result.p_value < 0.001, "p = {}", result.p_value);
    }

    #[test]
    fn paired_t_test_no_difference_is_insignificant() {
        let a = [0.5, 0.6, 0.7, 0.4, 0.55, 0.62, 0.48];
        let b = [0.52, 0.58, 0.71, 0.39, 0.56, 0.60, 0.49];
        let result = paired_t_test(&a, &b).unwrap();
        assert!(result.p_value > 0.05, "p = {}", result.p_value);
    }

    #[test]
    fn paired_t_test_degenerate_inputs() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(
            paired_t_test(&[1.0, 2.0], &[0.0, 1.0]).is_none(),
            "constant difference"
        );
    }
}
