//! The `R_k` database-selection accuracy metric (Section 6.2):
//!
//! ```text
//! R_k = A(q, D⃗, k) / A(q, D⃗_H, k)
//! ```
//!
//! where `A(q, D⃗, k)` is the total number of relevant documents in the
//! top-`k` databases of ranking `D⃗`, and `D⃗_H` is the hypothetical perfect
//! ranking by true relevant-document counts. `R_k = 1` for a perfect
//! choice of `k` databases, `0` for a useless one. A selection algorithm
//! may return fewer than `k` databases (databases at their default score
//! are "not selected"); the missing slots contribute nothing.

use selection::RankedDatabase;

/// Total relevant documents in the top-`k` of `ranking`.
/// `relevant[d]` is `r(q, D_d)` for database index `d`.
pub fn accumulated_relevant(ranking: &[usize], relevant: &[u32], k: usize) -> u64 {
    ranking
        .iter()
        .take(k)
        .map(|&d| u64::from(relevant[d]))
        .sum()
}

/// The best achievable top-`k` relevant total (the perfect rank `D⃗_H`).
pub fn ideal_relevant(relevant: &[u32], k: usize) -> u64 {
    let mut counts: Vec<u32> = relevant.to_vec();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts.iter().take(k).map(|&c| u64::from(c)).sum()
}

/// `R_k` for a ranking expressed as database indices. Returns `None` when
/// the query has no relevant documents anywhere (the metric is undefined
/// and the paper's averages skip such queries).
pub fn rk(ranking: &[usize], relevant: &[u32], k: usize) -> Option<f64> {
    let ideal = ideal_relevant(relevant, k);
    if ideal == 0 {
        return None;
    }
    Some(accumulated_relevant(ranking, relevant, k) as f64 / ideal as f64)
}

/// Convenience adapter for [`selection::RankedDatabase`] rankings.
pub fn rk_for_ranking(ranking: &[RankedDatabase], relevant: &[u32], k: usize) -> Option<f64> {
    let indices: Vec<usize> = ranking.iter().map(|r| r.index).collect();
    rk(&indices, relevant, k)
}

/// Mean `R_k` over queries, skipping undefined ones. Returns 0 when every
/// query is undefined.
pub fn mean_rk(rankings: &[Vec<usize>], relevance: &[Vec<u32>], k: usize) -> f64 {
    let values: Vec<f64> = rankings
        .iter()
        .zip(relevance)
        .filter_map(|(r, rel)| rk(r, rel, k))
        .collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let relevant = vec![0, 10, 5, 0, 2];
        let ranking = vec![1, 2, 4, 0, 3];
        assert_eq!(rk(&ranking, &relevant, 2), Some(1.0));
        assert_eq!(rk(&ranking, &relevant, 3), Some(1.0));
    }

    #[test]
    fn reversed_ranking_scores_low() {
        let relevant = vec![10, 0, 0];
        let ranking = vec![1, 2, 0];
        assert_eq!(rk(&ranking, &relevant, 2), Some(0.0));
        assert_eq!(rk(&ranking, &relevant, 3), Some(1.0));
    }

    #[test]
    fn partial_rankings_contribute_nothing_for_missing_slots() {
        let relevant = vec![10, 8, 6];
        let ranking = vec![0]; // algorithm selected only one database
        assert_eq!(rk(&ranking, &relevant, 2), Some(10.0 / 18.0));
    }

    #[test]
    fn undefined_when_no_relevant_documents() {
        assert_eq!(rk(&[0, 1], &[0, 0], 2), None);
    }

    #[test]
    fn mean_rk_skips_undefined_queries() {
        let rankings = vec![vec![0, 1], vec![0, 1]];
        // Query 0: R_1 = 5/10; query 1 has no relevant docs → skipped, so
        // the mean is 0.5 rather than being dragged down by an (undefined) 0.
        let relevance = vec![vec![5, 10], vec![0, 0]];
        assert!((mean_rk(&rankings, &relevance, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rk_for_ranking_adapts_scored_rankings() {
        let ranking = vec![
            RankedDatabase {
                index: 2,
                score: 9.0,
            },
            RankedDatabase {
                index: 0,
                score: 1.0,
            },
        ];
        let relevant = vec![1, 0, 9];
        assert_eq!(rk_for_ranking(&ranking, &relevant, 1), Some(1.0));
    }
}
