//! Document-level evaluation of *merged* metasearch results.
//!
//! Database selection (the paper's focus) is step (1) of metasearching;
//! steps (2)–(3) forward the query and merge the per-database result lists.
//! Given doc-level relevance ground truth, these metrics measure the final
//! merged ranking the user actually sees: precision at `k`, recall at `k`,
//! and (interpolated-free) average precision.

/// A merged result list: `(database index, document id)` pairs, best first.
pub type MergedList = [(usize, u32)];

/// Precision@k: the fraction of the top-`k` merged results that are
/// relevant. Lists shorter than `k` are penalized (missing slots count as
/// non-relevant), matching trec_eval's convention.
pub fn precision_at_k(
    merged: &MergedList,
    mut is_relevant: impl FnMut(usize, u32) -> bool,
    k: usize,
) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = merged
        .iter()
        .take(k)
        .filter(|&&(db, doc)| is_relevant(db, doc))
        .count();
    hits as f64 / k as f64
}

/// Recall@k: the fraction of all relevant documents that appear in the
/// top-`k`. Returns `None` when there are no relevant documents at all.
pub fn recall_at_k(
    merged: &MergedList,
    mut is_relevant: impl FnMut(usize, u32) -> bool,
    total_relevant: u64,
    k: usize,
) -> Option<f64> {
    if total_relevant == 0 {
        return None;
    }
    let hits = merged
        .iter()
        .take(k)
        .filter(|&&(db, doc)| is_relevant(db, doc))
        .count();
    Some(hits as f64 / total_relevant as f64)
}

/// Average precision of the merged list: the mean of precision values at
/// each relevant document's rank, divided by the total number of relevant
/// documents. Returns `None` when there are no relevant documents.
pub fn average_precision(
    merged: &MergedList,
    mut is_relevant: impl FnMut(usize, u32) -> bool,
    total_relevant: u64,
) -> Option<f64> {
    if total_relevant == 0 {
        return None;
    }
    let mut hits = 0u64;
    let mut sum = 0.0;
    for (rank0, &(db, doc)) in merged.iter().enumerate() {
        if is_relevant(db, doc) {
            hits += 1;
            sum += hits as f64 / (rank0 + 1) as f64;
        }
    }
    Some(sum / total_relevant as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Relevant documents: (0, 1), (0, 3), (1, 2).
    fn rel(db: usize, doc: u32) -> bool {
        matches!((db, doc), (0, 1) | (0, 3) | (1, 2))
    }

    #[test]
    fn precision_counts_relevant_prefix() {
        let merged = [(0, 1), (1, 9), (1, 2), (0, 2)];
        assert_eq!(precision_at_k(&merged, rel, 1), 1.0);
        assert_eq!(precision_at_k(&merged, rel, 2), 0.5);
        assert!((precision_at_k(&merged, rel, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&merged, rel, 0), 0.0);
    }

    #[test]
    fn short_lists_are_penalized() {
        let merged = [(0, 1)];
        assert_eq!(precision_at_k(&merged, rel, 10), 0.1);
    }

    #[test]
    fn recall_uses_total_relevant() {
        let merged = [(0, 1), (1, 2)];
        assert!((recall_at_k(&merged, rel, 3, 10).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(recall_at_k(&merged, rel, 0, 10), None);
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let merged = [(0, 1), (0, 3), (1, 2), (9, 9)];
        assert!((average_precision(&merged, rel, 3).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn late_relevant_documents_lower_ap() {
        let early = [(0, 1), (9, 9), (9, 8)];
        let late = [(9, 9), (9, 8), (0, 1)];
        let ap_early = average_precision(&early, rel, 3).unwrap();
        let ap_late = average_precision(&late, rel, 3).unwrap();
        assert!(ap_early > ap_late);
    }

    #[test]
    fn no_relevant_documents_is_undefined() {
        assert_eq!(average_precision(&[(0, 9)], rel, 0), None);
    }
}
