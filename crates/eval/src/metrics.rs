//! Content-summary quality metrics (Section 6.1 of the paper): weighted and
//! unweighted recall and precision, the Spearman rank-correlation
//! coefficient over word rankings, and the KL divergence of word-frequency
//! estimates.

use std::collections::HashMap;

use dbselect_core::shrinkage::ShrunkSummary;
use dbselect_core::summary::{ContentSummary, SummaryView};
use textindex::TermId;

use crate::stats::spearman;

/// A summary flattened for evaluation: its effective word set with both
/// probability models.
#[derive(Debug, Clone)]
pub struct EvaluatedSummary {
    /// `p̂(w|D)` (document-frequency model) per word.
    pub p_df: HashMap<TermId, f64>,
    /// `p̂(w|D)` (term-frequency model) per word.
    pub p_tf: HashMap<TermId, f64>,
}

impl EvaluatedSummary {
    /// Flatten an approximate or perfect [`ContentSummary`]: all words kept.
    pub fn from_content_summary(summary: &ContentSummary) -> Self {
        let p_df = summary.iter().map(|(t, _)| (t, summary.p_df(t))).collect();
        let p_tf = summary.iter().map(|(t, _)| (t, summary.p_tf(t))).collect();
        EvaluatedSummary { p_df, p_tf }
    }

    /// Flatten a shrunk summary, applying the paper's evaluation rule:
    /// *"we drop from the shrunk content summaries every word w with
    /// `round(|D|·p̂_R(w|D)) < 1`"* — i.e. words estimated to appear in less
    /// than one document do not count as present.
    pub fn from_shrunk_summary(summary: &ShrunkSummary) -> Self {
        let mut p_df = HashMap::new();
        let mut p_tf = HashMap::new();
        for (term, p) in summary.iter_df() {
            if (summary.db_size() * p).round() >= 1.0 {
                p_df.insert(term, p);
                p_tf.insert(term, summary.p_tf(term));
            }
        }
        EvaluatedSummary { p_df, p_tf }
    }

    /// Number of (effective) words.
    pub fn len(&self) -> usize {
        self.p_df.len()
    }

    /// Is the summary effectively empty?
    pub fn is_empty(&self) -> bool {
        self.p_df.is_empty()
    }
}

/// The full set of Section-6.1 metrics for one `(A(D), S(D))` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryQuality {
    /// Weighted recall `wr` (the `ctf` ratio of Callan & Connell).
    pub weighted_recall: f64,
    /// Unweighted recall `ur`: fraction of database words present.
    pub unweighted_recall: f64,
    /// Weighted precision `wp`.
    pub weighted_precision: f64,
    /// Unweighted precision `up`.
    pub unweighted_precision: f64,
    /// Spearman rank correlation of word rankings (over common words).
    pub spearman: f64,
    /// KL divergence of the term-frequency distributions (lower = better).
    pub kl_divergence: f64,
}

/// Compute all metrics of `approx` (the evaluated summary `A(D)`) against
/// `perfect` (the gold `S(D)`).
pub fn summary_quality(approx: &EvaluatedSummary, perfect: &EvaluatedSummary) -> SummaryQuality {
    // --- recall ---------------------------------------------------------
    let mut wr_num = 0.0;
    let mut wr_den = 0.0;
    let mut common = 0usize;
    for (&w, &p) in &perfect.p_df {
        wr_den += p;
        if approx.p_df.contains_key(&w) {
            wr_num += p;
            common += 1;
        }
    }
    let weighted_recall = if wr_den > 0.0 { wr_num / wr_den } else { 0.0 };
    let unweighted_recall = if perfect.p_df.is_empty() {
        0.0
    } else {
        common as f64 / perfect.p_df.len() as f64
    };

    // --- precision ------------------------------------------------------
    let mut wp_num = 0.0;
    let mut wp_den = 0.0;
    for (&w, &p_hat) in &approx.p_df {
        wp_den += p_hat;
        if perfect.p_df.contains_key(&w) {
            wp_num += p_hat;
        }
    }
    let weighted_precision = if wp_den > 0.0 { wp_num / wp_den } else { 0.0 };
    let unweighted_precision = if approx.p_df.is_empty() {
        0.0
    } else {
        common as f64 / approx.p_df.len() as f64
    };

    // --- word-ranking correlation (common words) -------------------------
    let mut xs = Vec::with_capacity(common);
    let mut ys = Vec::with_capacity(common);
    for (&w, &p_hat) in &approx.p_df {
        if let Some(&p) = perfect.p_df.get(&w) {
            xs.push(p_hat);
            ys.push(p);
        }
    }
    let spearman = spearman(&xs, &ys).unwrap_or(0.0);

    // --- KL divergence (term-frequency model, common words) --------------
    // Both distributions are renormalized over the common support so this
    // is a true KL divergence ("takes values from 0 to infinity",
    // Section 6.1); the raw truncated sum could otherwise go negative.
    let mut mass_p = 0.0;
    let mut mass_q = 0.0;
    for (&w, &p) in &perfect.p_tf {
        if let Some(&p_hat) = approx.p_tf.get(&w) {
            if p > 0.0 && p_hat > 0.0 {
                mass_p += p;
                mass_q += p_hat;
            }
        }
    }
    let mut kl = 0.0;
    if mass_p > 0.0 && mass_q > 0.0 {
        for (&w, &p) in &perfect.p_tf {
            if let Some(&p_hat) = approx.p_tf.get(&w) {
                if p > 0.0 && p_hat > 0.0 {
                    kl += (p / mass_p) * ((p / mass_p) / (p_hat / mass_q)).ln();
                }
            }
        }
        kl = kl.max(0.0); // guard float residue
    }

    SummaryQuality {
        weighted_recall,
        unweighted_recall,
        weighted_precision,
        unweighted_precision,
        spearman,
        kl_divergence: kl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbselect_core::summary::WordStats;

    fn content(db_size: f64, dfs: &[(TermId, f64)]) -> ContentSummary {
        let words: HashMap<TermId, WordStats> = dfs
            .iter()
            .map(|&(t, df)| {
                (
                    t,
                    WordStats {
                        sample_df: df as u32,
                        df,
                        tf: df,
                    },
                )
            })
            .collect();
        ContentSummary::new(db_size, db_size as u32, words)
    }

    #[test]
    fn identical_summaries_are_perfect() {
        let s = EvaluatedSummary::from_content_summary(&content(
            100.0,
            &[(1, 50.0), (2, 10.0), (3, 1.0)],
        ));
        let q = summary_quality(&s, &s);
        assert!((q.weighted_recall - 1.0).abs() < 1e-12);
        assert!((q.unweighted_recall - 1.0).abs() < 1e-12);
        assert!((q.weighted_precision - 1.0).abs() < 1e-12);
        assert!((q.unweighted_precision - 1.0).abs() < 1e-12);
        assert!((q.spearman - 1.0).abs() < 1e-12);
        assert!(q.kl_divergence.abs() < 1e-12);
    }

    #[test]
    fn recall_weights_frequent_words_more() {
        let perfect =
            EvaluatedSummary::from_content_summary(&content(100.0, &[(1, 90.0), (2, 1.0)]));
        // Approx has only the frequent word.
        let approx_frequent = EvaluatedSummary::from_content_summary(&content(100.0, &[(1, 90.0)]));
        // Or only the rare word.
        let approx_rare = EvaluatedSummary::from_content_summary(&content(100.0, &[(2, 1.0)]));
        let q_f = summary_quality(&approx_frequent, &perfect);
        let q_r = summary_quality(&approx_rare, &perfect);
        assert!(q_f.weighted_recall > 0.9);
        assert!(q_r.weighted_recall < 0.1);
        // Unweighted recall is 1/2 for both.
        assert!((q_f.unweighted_recall - 0.5).abs() < 1e-12);
        assert!((q_r.unweighted_recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spurious_words_hurt_precision_not_recall() {
        let perfect = EvaluatedSummary::from_content_summary(&content(100.0, &[(1, 50.0)]));
        let approx = EvaluatedSummary::from_content_summary(&content(
            100.0,
            &[(1, 50.0), (99, 25.0)], // word 99 not in the database
        ));
        let q = summary_quality(&approx, &perfect);
        assert!((q.weighted_recall - 1.0).abs() < 1e-12);
        assert!((q.unweighted_precision - 0.5).abs() < 1e-12);
        assert!((q.weighted_precision - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shrunk_summary_word_dropping_rule() {
        use dbselect_core::category_summary::SummaryComponent;
        use dbselect_core::shrinkage::{shrink, ShrinkageConfig};
        use textindex::Document;

        // The sample underestimates word 5 (p̂ = 0.5) relative to the
        // category (0.9), which is what earns the category a non-trivial λ;
        // the category then contributes word 2 strongly and word 3
        // negligibly.
        let docs = [
            Document::from_tokens(0, vec![1, 5]),
            Document::from_tokens(1, vec![1]),
        ];
        let mut summary = ContentSummary::from_sample(docs.iter(), 2.0);
        summary.set_db_size(100.0);
        let comp = SummaryComponent {
            p_df: HashMap::from([(1, 0.9), (5, 0.9), (2, 0.4), (3, 0.000001)]),
            p_tf: HashMap::from([(1, 0.9), (5, 0.9), (2, 0.4), (3, 0.000001)]),
        };
        let shrunk = shrink(
            &summary,
            &[std::sync::Arc::new(comp)],
            &ShrinkageConfig::default(),
        );
        let eval = EvaluatedSummary::from_shrunk_summary(&shrunk);
        assert!(eval.p_df.contains_key(&1));
        assert!(eval.p_df.contains_key(&2), "strongly-supported word kept");
        assert!(
            !eval.p_df.contains_key(&3),
            "sub-document-level word dropped"
        );
    }

    #[test]
    fn kl_penalizes_misestimated_frequencies() {
        let perfect =
            EvaluatedSummary::from_content_summary(&content(100.0, &[(1, 50.0), (2, 50.0)]));
        let good = EvaluatedSummary::from_content_summary(&content(100.0, &[(1, 49.0), (2, 51.0)]));
        let bad = EvaluatedSummary::from_content_summary(&content(100.0, &[(1, 95.0), (2, 5.0)]));
        let q_good = summary_quality(&good, &perfect);
        let q_bad = summary_quality(&bad, &perfect);
        assert!(q_good.kl_divergence < q_bad.kl_divergence);
    }

    #[test]
    fn empty_approx_summary_is_all_zero() {
        let perfect = EvaluatedSummary::from_content_summary(&content(100.0, &[(1, 50.0)]));
        let empty = EvaluatedSummary::from_content_summary(&content(100.0, &[]));
        let q = summary_quality(&empty, &perfect);
        assert_eq!(q.weighted_recall, 0.0);
        assert_eq!(q.unweighted_precision, 0.0);
        assert!(empty.is_empty());
        assert_eq!(perfect.len(), 1);
    }
}
