//! `eval` — the evaluation machinery of Section 6:
//!
//! * [`metrics`] — content-summary quality: weighted/unweighted recall and
//!   precision, Spearman rank correlation, KL divergence (Tables 4–9);
//! * [`mod@rk`] — the `R_k` database-selection accuracy metric (Figures 4–5);
//! * [`merged`] — document-level precision/recall/AP over *merged*
//!   metasearch result lists (steps 2–3 of the metasearching loop);
//! * [`stats`] — means, Spearman's ρ, and the paired t-test behind the
//!   paper's significance claims.

pub mod merged;
pub mod metrics;
pub mod rk;
pub mod stats;

pub use merged::{average_precision, precision_at_k, recall_at_k};
pub use metrics::{summary_quality, EvaluatedSummary, SummaryQuality};
pub use rk::{accumulated_relevant, ideal_relevant, mean_rk, rk, rk_for_ranking};
pub use stats::{mean, paired_t_test, pearson, spearman, PairedTTest};
