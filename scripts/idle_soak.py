#!/usr/bin/env python3
"""Idle-connection soak against a running dbselectd (reactor mode).

Parks COUNT established keep-alive connections — each serves one real
/healthz request first, so the daemon tracks it as a genuine idle
connection, not a half-open accept — then asserts via /metrics that the
daemon holds them all in the idle state, that fresh work still routes on
the fixed worker pool, and that a second request on a parked connection
still works (the park is a pause, not a leak). Exits non-zero on any
violation.

Usage: idle_soak.py HOST:PORT [COUNT]
"""

import socket
import sys

KEEP_ALIVE_HEALTHZ = b"GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n"


def read_framed_response(sock):
    """Read one Content-Length-framed response; returns (status, body)."""
    buf = b""
    while b"\r\n\r\n" not in buf:
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError(f"closed mid-headers after {len(buf)} bytes")
        buf += chunk
    head, body = buf.split(b"\r\n\r\n", 1)
    status = int(head.split(None, 2)[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(body) < length:
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError("closed mid-body")
        body += chunk
    return status, body[:length]


def request(sock, raw):
    sock.sendall(raw)
    return read_framed_response(sock)


def one_shot(addr, raw):
    """One request on a fresh connection; returns (status, body)."""
    with socket.create_connection(addr, timeout=10) as sock:
        return request(sock, raw)


def metric(addr, name):
    _, body = one_shot(
        addr, b"GET /metrics HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n"
    )
    for line in body.decode().splitlines():
        if line.startswith(name + " "):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"metric {name} missing")


def main():
    host, port = sys.argv[1].rsplit(":", 1)
    addr = (host, int(port))
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 10000

    parked = []
    try:
        for i in range(count):
            sock = socket.create_connection(addr, timeout=10)
            status, _ = request(sock, KEEP_ALIVE_HEALTHZ)
            assert status == 200, f"conn {i}: warm-up answered {status}"
            parked.append(sock)

        idle = metric(addr, 'dbselectd_connections_state{state="idle"}')
        assert idle >= count, f"only {idle:.0f} of {count} connections idle"
        open_conns = metric(addr, "dbselectd_open_connections")
        assert open_conns >= count, f"open gauge {open_conns:.0f} < {count}"

        # The parked population must not starve fresh work.
        status, body = one_shot(
            addr,
            b"POST /route HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n"
            b"Content-Length: 23\r\n\r\n"
            b'{"query":"heart blood"}',
        )
        assert status == 200, f"/route under soak answered {status}: {body[:120]}"

        # A parked connection is still a working connection.
        status, _ = request(parked[0], KEEP_ALIVE_HEALTHZ)
        assert status == 200, f"parked conn reuse answered {status}"

        print(f"idle_soak: parked {len(parked)} connections "
              f"(idle gauge {idle:.0f}, open {open_conns:.0f}); "
              f"routing and reuse OK")
    finally:
        for sock in parked:
            try:
                sock.close()
            except OSError:
                pass


if __name__ == "__main__":
    main()
