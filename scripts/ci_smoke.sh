#!/usr/bin/env bash
# CI smoke test for dbselectd: index a tiny fixture, freeze a catalog,
# start the daemon, check /healthz and /route, verify the served ranking
# matches `dbselect route` on the same catalog, then shut down cleanly.
set -euo pipefail

DBSELECT=${DBSELECT:-./target/release/dbselect}
ADDR=${ADDR:-127.0.0.1:7731}
WORK=$(mktemp -d)
SERVE_PID=
# Kill the daemon too: a failed assertion must not leave it orphaned
# (holding CI's output pipe open forever).
trap 'rm -rf "$WORK"; [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT

# --- fixture: two tiny "databases" of text files --------------------------
mkdir -p "$WORK/med" "$WORK/soccer"
printf 'hypertension blood pressure heart artery treatment\n' > "$WORK/med/a.txt"
printf 'the heart pumps blood through arteries and vessels\n' > "$WORK/med/b.txt"
printf 'cardiology studies the heart and its diseases\n'      > "$WORK/med/c.txt"
printf 'soccer goal stadium keeper defender\n'                > "$WORK/soccer/a.txt"
printf 'the keeper saved a goal before the stadium crowd\n'   > "$WORK/soccer/b.txt"

"$DBSELECT" index --out "$WORK/col.store" --full \
    med=Health/Medicine="$WORK/med" \
    soccer=Sports/Soccer="$WORK/soccer"
"$DBSELECT" catalog --store "$WORK/col.store" --out "$WORK/col.catalog"

# --- freeze a v2 serving snapshot; it must route like the v1 catalog ------
"$DBSELECT" freeze --catalog "$WORK/col.catalog" --out "$WORK/col.snapshot"

# --- start the daemon on the v2 snapshot ----------------------------------
# Short deadline/idle-timeout so the fault-injection phase below finishes
# quickly; both are still far above any healthy request's needs.
"$DBSELECT" serve --catalog "$WORK/col.snapshot" --addr "$ADDR" \
    --deadline-ms 2000 --idle-timeout-ms 500 &
SERVE_PID=$!
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" > /dev/null 2>&1 && break
    sleep 0.2
done
curl -sf "http://$ADDR/healthz"
echo

# --- route over HTTP and via the CLI, same catalog, same seed -------------
printf 'heart blood\n' > "$WORK/queries.txt"
"$DBSELECT" route --catalog "$WORK/col.catalog" --queries "$WORK/queries.txt" \
    | tee "$WORK/cli.txt"
curl -sf -X POST "http://$ADDR/route" -d '{"query":"heart blood"}' \
    | tee "$WORK/http.json"
echo

python3 "$(dirname "$0")/smoke_diff.py" "$WORK/http.json" "$WORK/cli.txt"

# --- metrics respond and count the served request -------------------------
curl -sf "http://$ADDR/metrics" > "$WORK/metrics1.txt"
grep 'dbselectd_requests_total{endpoint="route",status="200"} 1' "$WORK/metrics1.txt"

# --- catalog gauges are exported, with a real load time and file size -----
grep '^dbselectd_catalog_generation 1$' "$WORK/metrics1.txt"
grep '^dbselectd_catalog_load_seconds ' "$WORK/metrics1.txt"
grep '^dbselectd_catalog_snapshot_bytes ' "$WORK/metrics1.txt"
SNAP_BYTES=$(stat -c %s "$WORK/col.snapshot" 2>/dev/null || stat -f %z "$WORK/col.snapshot")
grep "^dbselectd_catalog_snapshot_bytes $SNAP_BYTES\$" "$WORK/metrics1.txt"

# --- fault injection: slow clients must not wedge or panic the pool -------
python3 "$(dirname "$0")/fault_inject.py" "$ADDR" 2.0
curl -sf "http://$ADDR/healthz" > /dev/null   # pool still serves …
curl -sf "http://$ADDR/metrics" > "$WORK/metrics2.txt"
grep '^dbselectd_worker_panics_total 0$' "$WORK/metrics2.txt"   # … and never panicked

# --- hot reload swaps the snapshot and bumps the generation gauge ---------
curl -sf -X POST "http://$ADDR/admin/reload" -d "{\"path\":\"$WORK/col.snapshot\"}"
echo
curl -sf "http://$ADDR/metrics" | grep '^dbselectd_catalog_generation 2$'

# --- clean shutdown: daemon exits 0 after /admin/shutdown -----------------
curl -sf -X POST "http://$ADDR/admin/shutdown"
echo
wait "$SERVE_PID"
echo "smoke test passed"
