#!/usr/bin/env bash
# CI smoke test for dbselectd: index a tiny fixture, freeze a catalog,
# then run the full serve/route/fault/reload/shutdown battery against
# BOTH connection paths — the event-driven reactor (default) and the
# legacy thread-per-connection fallback — and finish with a 10k
# idle-connection smoke against the reactor.
set -euo pipefail

DBSELECT=${DBSELECT:-./target/release/dbselect}
WORK=$(mktemp -d)
SERVE_PID=
EXTRA_PIDS=
# Kill the daemons too: a failed assertion must not leave them orphaned
# (holding CI's output pipe open forever).
trap 'rm -rf "$WORK"; for p in $SERVE_PID $EXTRA_PIDS; do kill -9 "$p" 2>/dev/null || true; done' EXIT

# The 10k idle-connection smoke needs fds for 10k daemon-side sockets
# plus 10k client-side ones.
ulimit -n 25000 2>/dev/null || ulimit -n 20000 2>/dev/null || true

# --- fixture: two tiny "databases" of text files --------------------------
mkdir -p "$WORK/med" "$WORK/soccer"
printf 'hypertension blood pressure heart artery treatment\n' > "$WORK/med/a.txt"
printf 'the heart pumps blood through arteries and vessels\n' > "$WORK/med/b.txt"
printf 'cardiology studies the heart and its diseases\n'      > "$WORK/med/c.txt"
printf 'soccer goal stadium keeper defender\n'                > "$WORK/soccer/a.txt"
printf 'the keeper saved a goal before the stadium crowd\n'   > "$WORK/soccer/b.txt"

"$DBSELECT" index --out "$WORK/col.store" --full \
    med=Health/Medicine="$WORK/med" \
    soccer=Sports/Soccer="$WORK/soccer"
"$DBSELECT" catalog --store "$WORK/col.store" --out "$WORK/col.catalog"

# --- freeze a v2 serving snapshot; it must route like the v1 catalog ------
"$DBSELECT" freeze --catalog "$WORK/col.catalog" --out "$WORK/col.snapshot"

printf 'heart blood\n' > "$WORK/queries.txt"
"$DBSELECT" route --catalog "$WORK/col.catalog" --queries "$WORK/queries.txt" \
    | tee "$WORK/cli.txt"

# One full smoke battery against a daemon serving with $1 on $2.
smoke_pass() {
    local mode_flag=$1 ADDR=$2
    echo "=== smoke pass: $mode_flag on $ADDR ==="

    # Short deadline/idle-timeout so the fault-injection phase below
    # finishes quickly; both are still far above any healthy request's
    # needs.
    "$DBSELECT" serve --catalog "$WORK/col.snapshot" --addr "$ADDR" \
        --deadline-ms 2000 --idle-timeout-ms 500 "$mode_flag" &
    SERVE_PID=$!
    for _ in $(seq 1 50); do
        curl -sf "http://$ADDR/healthz" > /dev/null 2>&1 && break
        sleep 0.2
    done
    curl -sf "http://$ADDR/healthz"
    echo

    # --- route over HTTP and via the CLI, same catalog, same seed ---------
    curl -sf -X POST "http://$ADDR/route" -d '{"query":"heart blood"}' \
        | tee "$WORK/http.json"
    echo
    python3 "$(dirname "$0")/smoke_diff.py" "$WORK/http.json" "$WORK/cli.txt"

    # --- metrics respond and count the served request ---------------------
    curl -sf "http://$ADDR/metrics" > "$WORK/metrics1.txt"
    grep 'dbselectd_requests_total{endpoint="route",status="200"} 1' "$WORK/metrics1.txt"

    # --- catalog gauges are exported, with a real load time and size ------
    grep '^dbselectd_catalog_generation 1$' "$WORK/metrics1.txt"
    grep '^dbselectd_catalog_load_seconds ' "$WORK/metrics1.txt"
    grep '^dbselectd_catalog_snapshot_bytes ' "$WORK/metrics1.txt"
    SNAP_BYTES=$(stat -c %s "$WORK/col.snapshot" 2>/dev/null || stat -f %z "$WORK/col.snapshot")
    grep "^dbselectd_catalog_snapshot_bytes $SNAP_BYTES\$" "$WORK/metrics1.txt"

    # --- connection gauges: both modes track open connections -------------
    # The scraping connection itself is open and mid-request, so the
    # gauge is at least 1 at scrape time.
    grep -E '^dbselectd_open_connections [1-9][0-9]*$' "$WORK/metrics1.txt"
    for state in reading executing writing idle draining; do
        grep "^dbselectd_connections_state{state=\"$state\"} " "$WORK/metrics1.txt"
    done
    grep '^dbselectd_eagain_total ' "$WORK/metrics1.txt"
    if [ "$mode_flag" = --reactor ]; then
        # The reactor's loop has demonstrably turned …
        grep -E '^dbselectd_reactor_wakeups_total [1-9][0-9]*$' "$WORK/metrics1.txt"
        # … and the scraping request is the one executing connection.
        grep 'dbselectd_connections_state{state="executing"} 1' "$WORK/metrics1.txt"
    else
        # The threaded path never spins a reactor.
        grep '^dbselectd_reactor_wakeups_total 0$' "$WORK/metrics1.txt"
    fi

    # --- fault injection: slow clients must not wedge or panic the pool ---
    python3 "$(dirname "$0")/fault_inject.py" "$ADDR" 2.0
    curl -sf "http://$ADDR/healthz" > /dev/null   # pool still serves …
    curl -sf "http://$ADDR/metrics" > "$WORK/metrics2.txt"
    grep '^dbselectd_worker_panics_total 0$' "$WORK/metrics2.txt"   # … and never panicked

    # --- hot reload swaps the snapshot and bumps the generation gauge -----
    curl -sf -X POST "http://$ADDR/admin/reload" -d "{\"path\":\"$WORK/col.snapshot\"}"
    echo
    curl -sf "http://$ADDR/metrics" | grep '^dbselectd_catalog_generation 2$'

    # --- clean shutdown: daemon exits 0 after /admin/shutdown -------------
    curl -sf -X POST "http://$ADDR/admin/shutdown"
    echo
    wait "$SERVE_PID"
    SERVE_PID=
    echo "=== smoke pass $mode_flag: ok ==="
}

smoke_pass --reactor          "${ADDR:-127.0.0.1:7731}"
smoke_pass --legacy-threaded  "${ADDR2:-127.0.0.1:7732}"

# --- top-k pruning: daemon k=3 equals the CLI's truncated ranking ---------
# Five databases with distinct document frequencies for the query terms,
# so the full ranking has five entries and k=3 genuinely truncates. The
# daemon serves k through the pruned maxscore kernels; the CLI's -k 3
# output is the truncation oracle. Both a monolithic daemon and a
# --shards 2 daemon (per-shard top-k, merged) must agree with it.
ADDR_K=${ADDR_K:-127.0.0.1:7739}
for i in 1 2 3 4 5; do
    mkdir -p "$WORK/kdb$i"
    for j in $(seq 1 "$i"); do
        printf 'heart blood pressure artery\n' > "$WORK/kdb$i/h$j.txt"
    done
    for j in $(seq "$i" 5); do
        printf 'calendar paper window music\n' > "$WORK/kdb$i/f$j.txt"
    done
done
"$DBSELECT" index --out "$WORK/k.store" --full \
    k1=Health/Medicine="$WORK/kdb1" \
    k2=Health/Medicine="$WORK/kdb2" \
    k3=Health/Medicine="$WORK/kdb3" \
    k4=Health/Medicine="$WORK/kdb4" \
    k5=Health/Medicine="$WORK/kdb5"
"$DBSELECT" catalog --store "$WORK/k.store" --out "$WORK/k.catalog"
"$DBSELECT" freeze --catalog "$WORK/k.catalog" --out "$WORK/k.snapshot"
printf 'heart blood\n' > "$WORK/kq.txt"
"$DBSELECT" route --catalog "$WORK/k.snapshot" --queries "$WORK/kq.txt" -k 3 \
    | tee "$WORK/cli_k3.txt"

topk_pass() {
    echo "=== top-k pass: ${*:-monolith} ==="
    "$DBSELECT" serve --catalog "$WORK/k.snapshot" --addr "$ADDR_K" "$@" &
    SERVE_PID=$!
    for _ in $(seq 1 50); do
        curl -sf "http://$ADDR_K/healthz" > /dev/null 2>&1 && break
        sleep 0.2
    done
    curl -sf -X POST "http://$ADDR_K/route" -d '{"query":"heart blood","k":3}' \
        | tee "$WORK/http_k3.json"
    echo
    python3 "$(dirname "$0")/smoke_diff.py" "$WORK/http_k3.json" "$WORK/cli_k3.txt"
    # k=0 is a client bug, not "no results": the daemon must answer 400.
    CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR_K/route" \
        -d '{"query":"heart blood","k":0}')
    [ "$CODE" = 400 ] || { echo "k=0 answered $CODE, expected 400" >&2; exit 1; }
    curl -sf -X POST "http://$ADDR_K/admin/shutdown"
    echo
    wait "$SERVE_PID"
    SERVE_PID=
}
topk_pass
topk_pass --shards 2
echo "=== top-k pruning diff: ok ==="

# --- 10k idle keep-alive connections on a fixed worker pool ---------------
# Reactor only: the whole point of the refactor is that parked
# connections cost a slab slot, not a thread. A long idle timeout keeps
# them parked for the duration; the worker pool stays at the default.
ADDR3=${ADDR3:-127.0.0.1:7733}
"$DBSELECT" serve --catalog "$WORK/col.snapshot" --addr "$ADDR3" \
    --deadline-ms 5000 --idle-timeout-ms 120000 --reactor &
SERVE_PID=$!
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR3/healthz" > /dev/null 2>&1 && break
    sleep 0.2
done
python3 "$(dirname "$0")/idle_soak.py" "$ADDR3" 10000
curl -sf -X POST "http://$ADDR3/admin/shutdown"
echo
wait "$SERVE_PID"
SERVE_PID=

# --- multi-tenant federated serving ---------------------------------------
# Two catalogs behind one daemon: alpha = the full med+soccer snapshot,
# beta = a med-only one, so the tenants demonstrably route differently.
# --shards 2 makes the daemon-vs-CLI diff below also pin the sharded
# scatter-gather path to the monolithic CLI ranking, bit for bit.
ADDR4=${ADDR4:-127.0.0.1:7734}
mkdir -p "$WORK/tenants"
cp "$WORK/col.snapshot" "$WORK/tenants/alpha.snap"
"$DBSELECT" index --out "$WORK/med.store" --full med=Health/Medicine="$WORK/med"
"$DBSELECT" catalog --store "$WORK/med.store" --out "$WORK/med.catalog"
"$DBSELECT" freeze --catalog "$WORK/med.catalog" --out "$WORK/tenants/beta.snap"

"$DBSELECT" serve --tenants "$WORK/tenants" --shards 2 --addr "$ADDR4" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR4/healthz" > /dev/null 2>&1 && break
    sleep 0.2
done
curl -sf "http://$ADDR4/healthz" | tee "$WORK/healthz_t.json" | grep '"tenants":2'
grep '"shards":2' "$WORK/healthz_t.json"
echo

# Sharded /t/alpha/route matches the monolithic CLI ranking bit for bit.
curl -sf -X POST "http://$ADDR4/t/alpha/route" -d '{"query":"heart blood"}' \
    | tee "$WORK/http_tenant.json"
echo
python3 "$(dirname "$0")/smoke_diff.py" "$WORK/http_tenant.json" "$WORK/cli.txt"

# Hammer-reload alpha at 100ms intervals while beta serves under load:
# every beta request must succeed (curl -sf + set -e make any failure
# fatal), and beta's generation/reload counters must stay untouched.
(
    for _ in $(seq 1 15); do
        curl -sf -X POST "http://$ADDR4/t/alpha/admin/reload" \
            -d "{\"path\":\"$WORK/tenants/alpha.snap\"}" > /dev/null
        sleep 0.1
    done
) &
RELOAD_PID=$!
for _ in $(seq 1 200); do
    curl -sf -X POST "http://$ADDR4/t/beta/route" -d '{"query":"heart blood"}' > /dev/null
done
wait "$RELOAD_PID"

# Per-tenant metric isolation: each tenant's counters reflect only its
# own traffic, under its own label.
curl -sf "http://$ADDR4/metrics" > "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_requests_total{tenant="alpha",endpoint="route",status="200"} 1$' "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_requests_total{tenant="beta",endpoint="route",status="200"} 200$' "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_reload_total{tenant="alpha"} 15$' "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_reload_total{tenant="beta"} 0$' "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_catalog_generation{tenant="alpha"} 16$' "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_catalog_generation{tenant="beta"} 1$' "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_in_flight{tenant="alpha"} 0$' "$WORK/metrics_t.txt"
grep 'dbselectd_tenant_in_flight{tenant="beta"} 0$' "$WORK/metrics_t.txt"

curl -sf -X POST "http://$ADDR4/admin/shutdown"
echo
wait "$SERVE_PID"
SERVE_PID=
echo "=== multi-tenant pass: ok ==="

# --- federated proxy: scatter-gather over two shard daemons ---------------
# Two real backends serve the full snapshot with --shards 2; the proxy
# scatters each query (shard 0 to one, shard 1 to the other) and merges.
# A monolithic daemon over the same snapshot is the byte-level oracle.
ADDR_B0=${ADDR_B0:-127.0.0.1:7735}
ADDR_B1=${ADDR_B1:-127.0.0.1:7736}
ADDR_PX=${ADDR_PX:-127.0.0.1:7737}
ADDR_MONO=${ADDR_MONO:-127.0.0.1:7738}

# Starts a shard backend on $1 in the background; caller reads $!.
start_backend() {
    "$DBSELECT" serve --catalog "$WORK/col.snapshot" --addr "$1" --shards 2 &
}
await_healthz() {
    for _ in $(seq 1 50); do
        curl -sf "http://$1/healthz" > /dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "daemon on $1 never became healthy" >&2
    return 1
}

start_backend "$ADDR_B0"
B0_PID=$!
start_backend "$ADDR_B1"
B1_PID=$!
"$DBSELECT" serve --catalog "$WORK/col.snapshot" --addr "$ADDR_MONO" &
MONO_PID=$!
EXTRA_PIDS="$B0_PID $B1_PID $MONO_PID"
await_healthz "$ADDR_B0"
await_healthz "$ADDR_B1"
await_healthz "$ADDR_MONO"

"$DBSELECT" serve --proxy --backends "$ADDR_B0,$ADDR_B1" --addr "$ADDR_PX" \
    --health-interval-ms 100 --breaker-threshold 2 --breaker-cooldown-ms 500 \
    --retry-after-ms 1500 &
PROXY_PID=$!
EXTRA_PIDS="$EXTRA_PIDS $PROXY_PID"
await_healthz "$ADDR_PX"

# /readyz answers 503 until the prober has seen every backend healthy.
for _ in $(seq 1 50); do
    curl -sf "http://$ADDR_PX/readyz" > /dev/null 2>&1 && break
    sleep 0.2
done
curl -sf "http://$ADDR_PX/readyz" | grep '"ready":true'

# Proxy /route and /route_batch are byte-identical to the monolithic
# daemon for every algorithm x shrinkage-mode pair.
for algo in bgloss cori lm; do
    for mode in adaptive always never; do
        BODY="{\"query\":\"heart blood goal\",\"algo\":\"$algo\",\"shrinkage\":\"$mode\",\"seed\":7}"
        curl -sf -X POST "http://$ADDR_MONO/route" -d "$BODY" > "$WORK/mono.json"
        curl -sf -X POST "http://$ADDR_PX/route"   -d "$BODY" > "$WORK/proxy.json"
        cmp "$WORK/mono.json" "$WORK/proxy.json" \
            || { echo "proxy diverged from monolith for $algo/$mode" >&2; exit 1; }
    done
done
BATCH='{"queries":["heart blood","soccer goal stadium"],"algo":"cori","seed":3,"k":2}'
curl -sf -X POST "http://$ADDR_MONO/route_batch" -d "$BATCH" > "$WORK/mono_batch.json"
curl -sf -X POST "http://$ADDR_PX/route_batch"   -d "$BATCH" > "$WORK/proxy_batch.json"
cmp "$WORK/mono_batch.json" "$WORK/proxy_batch.json"
echo "=== proxy bit-identity: ok ==="

# --- fault drill: kill one backend under sustained load -------------------
# Every client request must keep succeeding (curl -sf + set -e make any
# 5xx fatal): the proxy degrades instead of failing, the dead backend's
# breaker opens, and after a restart the half-open probe closes it again.
kill -9 "$B1_PID" 2>/dev/null || true
SAW_DEGRADED=0
for i in $(seq 1 60); do
    curl -sf -X POST "http://$ADDR_PX/route" -d '{"query":"heart blood"}' \
        > "$WORK/drill.json"
    grep -q '"degraded":true' "$WORK/drill.json" && SAW_DEGRADED=1
done
[ "$SAW_DEGRADED" = 1 ] || { echo "no degraded response after backend kill" >&2; exit 1; }
grep -q "\"missing_shards\":\[1\]" "$WORK/drill.json"

for _ in $(seq 1 100); do
    curl -sf "http://$ADDR_PX/metrics" > "$WORK/metrics_px.txt"
    grep -q "dbselectd_backend_breaker_state{backend=\"$ADDR_B1\"} 1" "$WORK/metrics_px.txt" && break
    sleep 0.1
done
grep "dbselectd_backend_breaker_state{backend=\"$ADDR_B1\"} 1" "$WORK/metrics_px.txt"
grep -E "dbselectd_backend_breaker_opens_total\{backend=\"$ADDR_B1\"\} [1-9]" "$WORK/metrics_px.txt"
grep -E '^dbselectd_proxy_degraded_total [1-9][0-9]*$' "$WORK/metrics_px.txt"
# Zero 5xx reached a client while one shard was up. (`set -e` ignores
# `!`-prefixed pipelines, so the failure must be explicit.)
if grep -E 'dbselectd_requests_total\{endpoint="route[^"]*",status="5' "$WORK/metrics_px.txt"; then
    echo "a 5xx reached a client during the fault drill" >&2
    exit 1
fi

# Restart the killed backend on the same address: the breaker must walk
# open -> half-open -> closed without any client-visible blip.
start_backend "$ADDR_B1"
B1_PID=$!
EXTRA_PIDS="$EXTRA_PIDS $B1_PID"
await_healthz "$ADDR_B1"
for _ in $(seq 1 100); do
    curl -sf "http://$ADDR_PX/metrics" > "$WORK/metrics_px.txt"
    grep -q "dbselectd_backend_breaker_state{backend=\"$ADDR_B1\"} 0" "$WORK/metrics_px.txt" && break
    sleep 0.1
done
grep "dbselectd_backend_breaker_state{backend=\"$ADDR_B1\"} 0" "$WORK/metrics_px.txt"
grep "dbselectd_backend_up{backend=\"$ADDR_B1\"} 1" "$WORK/metrics_px.txt"

# Fully recovered: byte-identical to the monolith again.
BODY='{"query":"heart blood goal","algo":"lm","shrinkage":"always","seed":11}'
curl -sf -X POST "http://$ADDR_MONO/route" -d "$BODY" > "$WORK/mono.json"
curl -sf -X POST "http://$ADDR_PX/route"   -d "$BODY" > "$WORK/proxy.json"
cmp "$WORK/mono.json" "$WORK/proxy.json"
echo "=== proxy fault drill: ok ==="

for a in "$ADDR_PX" "$ADDR_B0" "$ADDR_B1" "$ADDR_MONO"; do
    curl -sf -X POST "http://$a/admin/shutdown" > /dev/null
done
wait "$PROXY_PID" "$B0_PID" "$MONO_PID" 2>/dev/null || true
EXTRA_PIDS=

# --- live refresh: a 3-delta chain swapped in under client load -----------
# The daemon serves a chain directory and polls it; `dbselect refresh`
# appends three deltas while a client hammers /route. Every in-flight
# request must succeed across the swaps (curl -sf + set -e), the served
# chain generation must reach the tip, and a corrupted delta must roll
# back atomically — old generation keeps serving, failure counted.
ADDR_R=${ADDR_R:-127.0.0.1:7743}
mkdir -p "$WORK/chain"
"$DBSELECT" freeze --catalog "$WORK/col.catalog" --out "$WORK/chain/base.snap"

"$DBSELECT" serve --catalog "$WORK/chain" --addr "$ADDR_R" --refresh-interval-ms 100 &
SERVE_PID=$!
await_healthz "$ADDR_R"
curl -sf "http://$ADDR_R/metrics" | grep '^dbselectd_catalog_generation 1$'

# Sustained client load for the whole refresh window.
(
    for _ in $(seq 1 150); do
        curl -sf -X POST "http://$ADDR_R/route" -d '{"query":"heart blood"}' > /dev/null
    done
) &
LOAD_PID=$!

# Drift the med database, then append three delta rounds, paced so the
# 100ms poller swaps mid-load.
printf 'arrhythmia electrocardiogram monitoring of the heart\n' > "$WORK/med/d.txt"
"$DBSELECT" refresh --catalog "$WORK/col.catalog" --chain "$WORK/chain" \
    --rounds 3 --budget 1 --full --round-interval-ms 300 \
    med=Health/Medicine="$WORK/med" \
    soccer=Sports/Soccer="$WORK/soccer" | tee "$WORK/refresh.txt"
grep 'round 3 -> generation 3' "$WORK/refresh.txt"
ls "$WORK/chain/delta-000001.snap" "$WORK/chain/delta-000002.snap" \
   "$WORK/chain/delta-000003.snap" > /dev/null

wait "$LOAD_PID"    # zero failed in-flight requests across the swaps

# The poller walked the chain to its tip: served chain generation 3, the
# swap gauge strictly above its initial 1, and zero load failures.
for _ in $(seq 1 100); do
    curl -sf "http://$ADDR_R/readyz" > "$WORK/readyz_r.json"
    grep -q '"catalog_generation":3' "$WORK/readyz_r.json" && break
    sleep 0.1
done
grep '"catalog_generation":3' "$WORK/readyz_r.json"
curl -sf "http://$ADDR_R/metrics" > "$WORK/metrics_r.txt"
grep -E '^dbselectd_catalog_generation [2-9][0-9]*$' "$WORK/metrics_r.txt"
grep '^dbselectd_catalog_load_failures_total 0$' "$WORK/metrics_r.txt"

# The drifted vocabulary is served: terms that only exist in delta rounds
# route to the med database.
curl -sf -X POST "http://$ADDR_R/route" -d '{"query":"arrhythmia electrocardiogram"}' \
    | grep '"med"'

# Corrupt the tip delta (truncate its digest) and force a reload of the
# chain: the load must fail naming the bad file, the old generation must
# keep serving, and the failure must be counted.
cp "$WORK/chain/delta-000003.snap" "$WORK/delta3.bak"
D3_BYTES=$(stat -c %s "$WORK/chain/delta-000003.snap" 2>/dev/null \
    || stat -f %z "$WORK/chain/delta-000003.snap")
head -c $((D3_BYTES - 1)) "$WORK/delta3.bak" > "$WORK/chain/delta-000003.snap"
CODE=$(curl -s -o "$WORK/reload_err.json" -w '%{http_code}' \
    -X POST "http://$ADDR_R/admin/reload" -d "{\"path\":\"$WORK/chain\"}")
[ "$CODE" = 400 ] || { echo "corrupt chain reload answered $CODE, expected 400" >&2; exit 1; }
grep 'delta-000003.snap' "$WORK/reload_err.json"
curl -sf "http://$ADDR_R/readyz" | grep '"catalog_generation":3'   # still serving the old tip
curl -sf -X POST "http://$ADDR_R/route" -d '{"query":"heart blood"}' > /dev/null
curl -sf "http://$ADDR_R/metrics" \
    | grep -E '^dbselectd_catalog_load_failures_total [1-9][0-9]*$'

# Restore the delta: the chain loads again.
cp "$WORK/delta3.bak" "$WORK/chain/delta-000003.snap"
curl -sf -X POST "http://$ADDR_R/admin/reload" -d "{\"path\":\"$WORK/chain\"}" \
    | grep '"catalog_generation":3'

curl -sf -X POST "http://$ADDR_R/admin/shutdown"
echo
wait "$SERVE_PID"
SERVE_PID=
echo "=== live refresh pass: ok ==="

echo "smoke test passed"
