#!/usr/bin/env python3
"""Compare a dbselectd /route response against `dbselect route` output.

Usage: smoke_diff.py HTTP_JSON CLI_TEXT

Both must rank the same databases in the same order with the same scores
(the CLI prints scores with 6 decimal places; the JSON carries full
precision, so scores are compared after rounding).
"""
import json
import re
import sys

http_path, cli_path = sys.argv[1], sys.argv[2]

served = json.load(open(http_path))
http_ranking = [(r["database"], round(r["score"], 6)) for r in served["ranking"]]

# CLI ranking lines look like: "  med                      0.123456  (Root/Health/Medicine)"
line_re = re.compile(r"^\s{2}(\S+)\s+(-?\d+\.\d{6})\s+\(")
cli_ranking = []
for line in open(cli_path):
    m = line_re.match(line)
    if m:
        cli_ranking.append((m.group(1), float(m.group(2))))

if not http_ranking or not cli_ranking:
    sys.exit(f"empty ranking: http={http_ranking} cli={cli_ranking}")
if http_ranking != cli_ranking:
    sys.exit(
        "daemon and CLI rankings diverge:\n"
        f"  http: {http_ranking}\n"
        f"  cli:  {cli_ranking}"
    )
print(f"rankings identical across HTTP and CLI: {http_ranking}")
