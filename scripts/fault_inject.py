#!/usr/bin/env python3
"""Fault-injection probes against a running dbselectd.

Drives the pathological clients the daemon's connection lifecycle must
survive — dribbled request bytes, a stall after headers, a close
mid-body — and checks keep-alive reuse works. The daemon is expected to
answer 408 for the slow-read faults within deadline + write grace, free
the worker, and never panic (the caller asserts the panic counter via
/metrics afterwards).

Usage: fault_inject.py HOST:PORT [DEADLINE_SECONDS]
"""

import select
import socket
import sys
import time

# Matches ERROR_WRITE_GRACE in crates/server/src/lib.rs.
WRITE_GRACE = 2.0


def recv_until_eof(sock):
    """Read until the peer closes; tolerate a late RST after data."""
    chunks = []
    while True:
        try:
            chunk = sock.recv(4096)
        except OSError:
            break
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def dribble(addr, deadline):
    """One byte at a time: per-syscall timeouts would never fire, the
    request deadline must. Expect a 408 within deadline + grace."""
    sock = socket.create_connection(addr, timeout=deadline + WRITE_GRACE + 5)
    start = time.time()
    response = b""
    payload = b"GET /healthz HTTP/1.1\r\nHost: fault\r\n\r\n"
    # Pace the dribble so the whole request would take 2x the deadline —
    # the daemon must cut it off at 1x, never see it complete.
    interval = 2.0 * deadline / len(payload)
    for byte in payload:
        try:
            sock.sendall(bytes([byte]))
        except OSError:
            break  # daemon gave up on us — exactly the point
        readable, _, _ = select.select([sock], [], [], interval)
        if readable:
            response = recv_until_eof(sock)
            break
    if not response:
        response = recv_until_eof(sock)
    elapsed = time.time() - start
    sock.close()
    assert response.startswith(b"HTTP/1.1 408 "), response[:80]
    assert elapsed < deadline + WRITE_GRACE + 2, f"408 took {elapsed:.1f}s"
    print(f"  dribble: 408 after {elapsed:.2f}s")


def stall_after_headers(addr, deadline):
    """Promise a body, never send it. Expect a 408."""
    sock = socket.create_connection(addr, timeout=deadline + WRITE_GRACE + 5)
    start = time.time()
    sock.sendall(b"POST /route HTTP/1.1\r\nHost: fault\r\nContent-Length: 32\r\n\r\n")
    response = recv_until_eof(sock)
    elapsed = time.time() - start
    sock.close()
    assert response.startswith(b"HTTP/1.1 408 "), response[:80]
    assert elapsed < deadline + WRITE_GRACE + 2, f"408 took {elapsed:.1f}s"
    print(f"  stall-after-headers: 408 after {elapsed:.2f}s")


def close_mid_body(addr):
    """Send half the promised body and vanish. No response expected; the
    daemon must shrug it off (the caller checks health and panics)."""
    sock = socket.create_connection(addr, timeout=5)
    sock.sendall(b'POST /route HTTP/1.1\r\nHost: fault\r\nContent-Length: 64\r\n\r\n{"query":')
    sock.close()
    print("  close-mid-body: sent and vanished")


def read_framed(reader):
    """Read one Content-Length-framed response from a file object."""
    status = None
    length = 0
    while True:
        line = reader.readline()
        if not line:
            raise AssertionError("connection closed mid-headers")
        if status is None:
            status = int(line.split()[1])
        if line in (b"\r\n", b"\n"):
            break
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = reader.read(length)
    assert len(body) == length, "truncated body"
    return status


def keep_alive_reuse(addr):
    """Two requests down one persistent connection must both answer."""
    sock = socket.create_connection(addr, timeout=5)
    reader = sock.makefile("rb")
    for _ in range(2):
        sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: fault\r\n\r\n")
        status = read_framed(reader)
        assert status == 200, status
    sock.close()
    print("  keep-alive: 2 requests on one connection")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    host, port = sys.argv[1].rsplit(":", 1)
    addr = (host, int(port))
    deadline = float(sys.argv[2]) if len(sys.argv) > 2 else 2.0

    keep_alive_reuse(addr)
    dribble(addr, deadline)
    stall_after_headers(addr, deadline)
    close_mid_body(addr)
    print("fault injection passed")


if __name__ == "__main__":
    main()
