//! A batteries-included metasearcher façade over the full pipeline:
//! sampling → content summaries → shrinkage → adaptive database selection.
//!
//! This is the API a downstream user of the library is expected to touch
//! first; the individual crates expose every stage for finer control.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dbselect_core::category_summary::{CategorySummaries, CategoryWeighting};
use dbselect_core::hierarchy::{CategoryId, Hierarchy};
use dbselect_core::shrinkage::{shrink, ShrinkageConfig, ShrunkSummary};
use dbselect_core::summary::ContentSummary;
use sampling::{profile_fps, profile_qbs, PipelineConfig, ProbeClassifier, SamplerKind};
use selection::{
    adaptive_rank, AdaptiveConfig, BGloss, Cori, Lm, SelectionAlgorithm, ShrinkageMode, SummaryPair,
};
use textindex::{RemoteDatabase, TermId};

/// Which base selection algorithm the metasearcher scores with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// bGlOSS: expected number of matching documents.
    BGloss,
    /// CORI: INQUERY-style belief scores.
    #[default]
    Cori,
    /// Language modelling with Root-category smoothing.
    Lm,
}

/// How the metasearcher learns each database's topic category.
pub enum Classification {
    /// Categories are known up front (e.g. from a web directory).
    Directory(Vec<CategoryId>),
    /// Derive categories automatically during Focused Probing, using this
    /// trained probe classifier.
    Automatic(ProbeClassifier),
}

/// Metasearcher construction options.
#[derive(Debug, Clone, Copy)]
pub struct MetasearcherConfig {
    /// Sampling algorithm used to build content summaries.
    pub sampler: SamplerKind,
    /// Apply Appendix-A frequency estimation (recommended).
    pub frequency_estimation: bool,
    /// When to substitute shrunk summaries during selection.
    pub shrinkage: ShrinkageMode,
    /// RNG seed (sampling and the adaptive test are randomized).
    pub seed: u64,
}

impl Default for MetasearcherConfig {
    fn default() -> Self {
        MetasearcherConfig {
            sampler: SamplerKind::Qbs,
            frequency_estimation: true,
            shrinkage: ShrinkageMode::Adaptive,
            seed: 42,
        }
    }
}

/// One selected database with its relevance score.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Index into the metasearcher's database list.
    pub index: usize,
    /// Database name.
    pub name: String,
    /// Selection score (comparable within one query only).
    pub score: f64,
}

/// A ready-to-query metasearcher over a set of remote text databases.
pub struct Metasearcher<D: RemoteDatabase> {
    databases: Vec<D>,
    hierarchy: Hierarchy,
    summaries: Vec<ContentSummary>,
    shrunk: Vec<ShrunkSummary>,
    classifications: Vec<CategoryId>,
    algorithm: Box<dyn SelectionAlgorithm>,
    config: MetasearcherConfig,
    rng: StdRng,
}

impl<D: RemoteDatabase> Metasearcher<D> {
    /// Profile `databases` (sampling, size/frequency estimation,
    /// classification, shrinkage) and return a metasearcher ready to route
    /// queries.
    ///
    /// * `seed_lexicon` — common words to bootstrap query-based sampling;
    /// * `classification` — directory categories or an automatic classifier;
    /// * `algorithm` — the base selection algorithm;
    /// * `dict_size` — vocabulary size of the shared [`textindex::TermDict`],
    ///   used for the uniform shrinkage component.
    pub fn build(
        hierarchy: Hierarchy,
        databases: Vec<D>,
        seed_lexicon: &[TermId],
        classification: Classification,
        algorithm: Algorithm,
        dict_size: usize,
        config: MetasearcherConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pipeline = PipelineConfig {
            frequency_estimation: config.frequency_estimation,
            ..Default::default()
        };

        // 1. Sample every database.
        let mut summaries = Vec::with_capacity(databases.len());
        let mut classifications = Vec::with_capacity(databases.len());
        for (i, db) in databases.iter().enumerate() {
            match (&classification, config.sampler) {
                (Classification::Automatic(classifier), _) => {
                    let profile = profile_fps(db, &hierarchy, classifier, &pipeline, &mut rng);
                    summaries.push(profile.summary);
                    classifications.push(profile.classification.expect("FPS always classifies"));
                }
                (Classification::Directory(cats), SamplerKind::Qbs) => {
                    let profile = profile_qbs(db, seed_lexicon, &pipeline, &mut rng);
                    summaries.push(profile.summary);
                    classifications.push(cats[i]);
                }
                (Classification::Directory(cats), SamplerKind::Fps) => {
                    // FPS sampling but trusting the directory classification
                    // requires a classifier; fall back to QBS sampling.
                    let profile = profile_qbs(db, seed_lexicon, &pipeline, &mut rng);
                    summaries.push(profile.summary);
                    classifications.push(cats[i]);
                }
            }
        }

        // 2. Category summaries and shrinkage.
        let refs: Vec<(CategoryId, &ContentSummary)> = classifications
            .iter()
            .copied()
            .zip(summaries.iter())
            .collect();
        let categories = CategorySummaries::build(&hierarchy, &refs, CategoryWeighting::BySize);
        let shrink_config = ShrinkageConfig {
            uniform_p: 1.0 / dict_size.max(1) as f64,
            ..Default::default()
        };
        let shrunk: Vec<ShrunkSummary> = summaries
            .iter()
            .zip(&classifications)
            .map(|(s, &c)| {
                let comps = categories.components_for(&hierarchy, c, s, true);
                shrink(s, &comps, &shrink_config)
            })
            .collect();

        // 3. The base algorithm (LM needs the Root summary as its global
        //    model).
        let algorithm: Box<dyn SelectionAlgorithm> = match algorithm {
            Algorithm::BGloss => Box::new(BGloss),
            Algorithm::Cori => Box::new(Cori::default()),
            Algorithm::Lm => Box::new(Lm::new(0.5, &categories.category_summary(Hierarchy::ROOT))),
        };

        Metasearcher {
            databases,
            hierarchy,
            summaries,
            shrunk,
            classifications,
            algorithm,
            config,
            rng,
        }
    }

    /// Rank the best databases for a query and return the top `k`.
    pub fn select(&mut self, query: &[TermId], k: usize) -> Vec<Selection> {
        let pairs: Vec<SummaryPair<'_>> = self
            .summaries
            .iter()
            .zip(&self.shrunk)
            .map(|(unshrunk, shrunk)| SummaryPair { unshrunk, shrunk })
            .collect();
        let adaptive = AdaptiveConfig {
            mode: self.config.shrinkage,
            ..Default::default()
        };
        let outcome = adaptive_rank(
            self.algorithm.as_ref(),
            query,
            &pairs,
            &adaptive,
            &mut self.rng,
        );
        outcome
            .ranking
            .into_iter()
            .take(k)
            .map(|r| Selection {
                index: r.index,
                name: self.databases[r.index].name().to_string(),
                score: r.score,
            })
            .collect()
    }

    /// Evaluate a query against the selected databases and merge the
    /// results — the full metasearching loop of the paper's introduction:
    /// select databases, forward the query, merge the result lists
    /// (CORI-weighted normalization by default).
    /// Returns `(database name, doc id)` pairs, best-merged first.
    pub fn search(
        &mut self,
        query: &[TermId],
        k_databases: usize,
        results_per_db: usize,
    ) -> Vec<(String, u32)> {
        let selections = self.select(query, k_databases);
        let inputs: Vec<(usize, f64, textindex::SearchOutcome)> = selections
            .iter()
            .map(|s| {
                (
                    s.index,
                    s.score,
                    self.databases[s.index].query_any(query, results_per_db),
                )
            })
            .collect();
        selection::merge_results(
            &inputs,
            selection::MergeStrategy::CoriWeighted,
            k_databases * results_per_db,
        )
        .into_iter()
        .map(|m| (self.databases[m.database].name().to_string(), m.doc))
        .collect()
    }

    /// The inferred (or given) category of database `index`.
    pub fn classification(&self, index: usize) -> CategoryId {
        self.classifications[index]
    }

    /// The hierarchy the metasearcher classifies into.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The approximate content summary of database `index`.
    pub fn summary(&self, index: usize) -> &ContentSummary {
        &self.summaries[index]
    }

    /// The shrunk content summary of database `index`.
    pub fn shrunk_summary(&self, index: usize) -> &ShrunkSummary {
        &self.shrunk[index]
    }

    /// Number of registered databases.
    pub fn len(&self) -> usize {
        self.databases.len()
    }

    /// True when no databases are registered.
    pub fn is_empty(&self) -> bool {
        self.databases.is_empty()
    }
}
