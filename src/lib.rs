//! `dbselect-repro` — a production-quality reproduction of
//! *"When one Sample is not Enough: Improving Text Database Selection Using
//! Shrinkage"* (Ipeirotis & Gravano, SIGMOD 2004).
//!
//! The workspace is organized bottom-up:
//!
//! * [`textindex`] — in-memory full-text search engine (the Lucene role);
//! * [`dbselect_core`] — content summaries, topic hierarchies, shrinkage
//!   via EM, frequency estimation, score-uncertainty estimation (the
//!   paper's primary contribution);
//! * [`corpus`] — synthetic TREC4/TREC6/Web-like test beds with ground
//!   truth;
//! * [`sampling`] — QBS and Focused Probing samplers, size estimation;
//! * [`selection`] — bGlOSS, CORI, LM, the hierarchical baseline, and
//!   adaptive shrinkage selection;
//! * [`eval`] — the Section-6 evaluation metrics.
//!
//! This umbrella crate adds the [`Metasearcher`] façade used by the
//! `examples/`.
//!
//! ```
//! use dbselect_repro::{Algorithm, Classification, Metasearcher, MetasearcherConfig};
//! use dbselect_repro::corpus::TestBedConfig;
//!
//! let bed = TestBedConfig::tiny(7).build();
//! let databases: Vec<_> = bed.databases.iter().map(|d| d.db.clone()).collect();
//! let mut meta = Metasearcher::build(
//!     bed.hierarchy.clone(),
//!     databases,
//!     &bed.seed_lexicon,
//!     Classification::Directory(bed.true_categories()),
//!     Algorithm::Cori,
//!     bed.dict.len(),
//!     MetasearcherConfig::default(),
//! );
//! let hits = meta.select(&bed.queries[0].terms, 3);
//! assert!(hits.len() <= 3);
//! ```

pub mod metasearcher;

pub use metasearcher::{Algorithm, Classification, Metasearcher, MetasearcherConfig, Selection};

// Re-export the member crates under stable names.
pub use corpus;
pub use dbselect_core as core;
pub use eval;
pub use sampling;
pub use selection;
pub use textindex;
